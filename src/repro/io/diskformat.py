"""The memory-mapped on-disk container (format version 2).

The paper's serving story is build-once / query-many at archive scale: a
1.8TB index distilled from 170TB of reads is shipped to query nodes that
must start answering immediately.  Loading such an index into fresh
in-memory arrays (the v1 path in :mod:`repro.core.serialization`) reads the
whole payload and holds it twice during the copy; the v2 container instead
lays the raw bit-array words out contiguously so a server can ``mmap`` the
file and let :class:`repro.bloom.bitarray.BitArray` wrap read-only views —
opening costs one small header read, and the batched probe kernel pages in
only the words a query actually touches.

Byte-level layout (all integers little-endian)::

    offset      size        field
    ------      ----        -----
    0           7           magic  b"RAMBO2\\n"
    7           1           reserved (zero)
    8           8           header length H (uint64)
    16          H           JSON header (UTF-8)
    16 + H      0..7        zero padding to the next 8-byte boundary
    P           N           payload: raw little-endian uint64 words, C-order

where ``P = ceil((16 + H) / 8) * 8`` and ``N`` is the payload byte count
recorded in the header.  The JSON header always carries ``format_version``
(2), ``kind`` (``"rambo"`` or ``"cobs"``) and a ``payload`` descriptor
(``{"shape": [...], "nbytes": N}``); everything else is kind-specific
metadata (config, document names, partition assignments).

This module owns only the container: magic/version framing, header
round-trip, payload mapping and integrity checks.  Index-specific packing
lives next to each index (:mod:`repro.core.serialization` for RAMBO,
:meth:`repro.baselines.cobs.CobsIndex.save_mmap` for COBS).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

#: Magic prefix of the v2 (memory-mapped) container.
MAGIC_V2 = b"RAMBO2\n"

#: Magic prefix of the v1 (load-into-memory) container, owned by
#: :mod:`repro.core.serialization`; recognised here so format detection has
#: a single home.
MAGIC_V1 = b"RAMBO1\n"

#: Container format version written and accepted by this module.
FORMAT_VERSION = 2

#: On-disk word dtype: 64-bit little-endian, matching
#: :meth:`repro.bloom.bitarray.BitArray.to_bytes`.
WORD_DTYPE = np.dtype("<u8")

_PRELUDE = len(MAGIC_V2) + 1 + 8  # magic + reserved byte + header length


class DiskFormatError(ValueError):
    """A container file is malformed, truncated or of an unsupported version.

    Subclasses :class:`ValueError` so callers that historically caught the
    v1 loader's errors keep working unchanged.
    """


def _require_little_endian() -> None:
    if sys.byteorder != "little":
        raise DiskFormatError(
            "the mmap container stores little-endian words and zero-copy "
            "serving is only supported on little-endian hosts; use the v1 "
            "format here"
        )


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def detect_format(path: PathLike) -> str:
    """Classify an index file by magic: ``"v1"`` or ``"mmap"``.

    Raises :class:`DiskFormatError` when the file starts with neither magic,
    and lets :class:`FileNotFoundError` propagate for missing paths.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        prefix = handle.read(len(MAGIC_V2))
    if prefix == MAGIC_V1:
        return "v1"
    if prefix == MAGIC_V2:
        return "mmap"
    raise DiskFormatError(f"{path} is not a RAMBO index file (bad magic {prefix!r})")


def write_container(path: PathLike, header: Dict, payload: np.ndarray) -> int:
    """Write one v2 container; returns the number of bytes written.

    Parameters
    ----------
    header:
        JSON-serialisable metadata.  ``format_version`` defaults to
        :data:`FORMAT_VERSION` if absent (tests craft mismatched versions on
        purpose); the ``payload`` descriptor is filled in here.
    payload:
        The index's backing words as one C-contiguous ``uint64`` array; its
        shape is preserved so the opener can map it back without reshaping
        arithmetic of its own.

    Raises
    ------
    DiskFormatError
        If *payload* is not a ``uint64`` array.
    """
    payload = np.ascontiguousarray(payload)
    if payload.dtype != np.uint64:
        raise DiskFormatError(f"payload must be uint64 words, got dtype {payload.dtype}")
    header = dict(header)
    header.setdefault("format_version", FORMAT_VERSION)
    header["payload"] = {"shape": list(payload.shape), "nbytes": int(payload.nbytes)}
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload_offset = _align8(_PRELUDE + len(header_bytes))
    padding = payload_offset - (_PRELUDE + len(header_bytes))

    path = Path(path)
    with open(path, "wb") as handle:
        handle.write(MAGIC_V2)
        handle.write(b"\x00")
        handle.write(len(header_bytes).to_bytes(8, "little"))
        handle.write(header_bytes)
        handle.write(b"\x00" * padding)
        # tofile streams the words without materialising a bytes copy of the
        # payload (which at serving scale would double peak memory); it
        # writes through the fd directly, so flush the buffered prelude
        # first to keep the bytes in order.
        handle.flush()
        payload.astype(WORD_DTYPE, copy=False).tofile(handle)
    return path.stat().st_size


def read_container_header(path: PathLike) -> Tuple[Dict, int]:
    """Read and validate a v2 header; returns ``(header, payload_offset)``.

    This is the *only* read the open path performs — the payload itself is
    never touched, so opening stays O(header) no matter how large the index
    is.  The file length is checked against the header's payload descriptor,
    which rejects truncated files and trailing garbage up front instead of
    letting a query fault half-way through a mapped probe.

    Raises
    ------
    DiskFormatError
        On bad magic, an unsupported ``format_version``, an unparsable
        header, or a file size that disagrees with the payload descriptor.
    """
    path = Path(path)
    file_size = path.stat().st_size
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC_V2))
        if magic != MAGIC_V2:
            if magic == MAGIC_V1:
                raise DiskFormatError(
                    f"{path} is a v1 index (load it with load_index); "
                    "the mmap opener only reads format version 2"
                )
            raise DiskFormatError(
                f"{path} is not a RAMBO mmap index (bad magic {magic!r})"
            )
        handle.read(1)  # reserved
        header_len = int.from_bytes(handle.read(8), "little")
        if _PRELUDE + header_len > file_size:
            raise DiskFormatError(f"{path} is truncated (header extends past EOF)")
        try:
            header = json.loads(handle.read(header_len).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DiskFormatError(f"{path} has a corrupt header") from exc
    version = header.get("format_version")
    if version != FORMAT_VERSION:
        raise DiskFormatError(
            f"{path} has unsupported format version {version!r} "
            f"(this reader understands version {FORMAT_VERSION})"
        )
    descriptor = header.get("payload")
    if (
        not isinstance(descriptor, dict)
        or "shape" not in descriptor
        or "nbytes" not in descriptor
    ):
        raise DiskFormatError(f"{path} header is missing the payload descriptor")
    shape = tuple(int(n) for n in descriptor["shape"])
    nbytes = int(descriptor["nbytes"])
    if int(np.prod(shape, dtype=np.int64)) * WORD_DTYPE.itemsize != nbytes:
        raise DiskFormatError(f"{path} has an inconsistent payload descriptor")
    payload_offset = _align8(_PRELUDE + header_len)
    if payload_offset + nbytes > file_size:
        raise DiskFormatError(f"{path} is truncated (payload extends past EOF)")
    if payload_offset + nbytes < file_size:
        raise DiskFormatError(f"{path} has trailing data after the payload")
    return header, payload_offset


def map_container_payload(
    path: PathLike, header: Dict, payload_offset: int, mode: str = "r"
) -> np.ndarray:
    """Memory-map the payload words described by a validated *header*.

    Parameters
    ----------
    mode:
        ``"r"`` maps the words read-only (mutation raises cleanly through
        :class:`repro.bloom.bitarray.BitArray`); ``"c"`` maps copy-on-write —
        writes succeed in anonymous memory and are never flushed to the file.

    Returns the mapped array with the shape recorded in the header.  An
    empty payload returns a regular zero-size array (``mmap`` cannot map
    zero bytes).
    """
    if mode not in ("r", "c"):
        raise ValueError(f"mode must be 'r' or 'c', got {mode!r}")
    _require_little_endian()
    shape = tuple(int(n) for n in header["payload"]["shape"])
    if int(np.prod(shape, dtype=np.int64)) == 0:
        words = np.zeros(shape, dtype=np.uint64)
        if mode == "r":
            words.setflags(write=False)
        return words
    return np.memmap(Path(path), dtype=WORD_DTYPE, mode=mode, offset=payload_offset, shape=shape)
