"""FASTQ reader and writer (Sanger quality encoding).

FASTQ is the raw-read format of the paper's first data configuration: every
record is four lines (``@name``, sequence, ``+``, quality string).  The reader
validates the invariants that matter for indexing (sequence and quality
lengths match, separator line present) and streams records lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union

PathLike = Union[str, Path]

#: Phred+33 offset used by the Sanger / Illumina 1.8+ encoding.
PHRED_OFFSET = 33


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ read: name, nucleotide sequence and per-base quality string."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.quality):
            raise ValueError(
                f"sequence and quality length differ for read {self.name!r}: "
                f"{len(self.sequence)} vs {len(self.quality)}"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    def phred_scores(self) -> List[int]:
        """Per-base Phred quality scores."""
        return [ord(ch) - PHRED_OFFSET for ch in self.quality]

    def mean_quality(self) -> float:
        """Average Phred score of the read (0.0 for empty reads)."""
        scores = self.phred_scores()
        return sum(scores) / len(scores) if scores else 0.0


def read_fastq(path: PathLike) -> Iterator[FastqRecord]:
    """Stream the records of a FASTQ file, validating the 4-line structure."""
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            header = handle.readline()
            if not header:
                return
            # Strip \r as well as \n: CRLF files would otherwise carry a
            # trailing carriage return into the sequence and quality strings.
            # Both grow by one character, so the length invariant still holds
            # and the corruption would only surface later as ambiguous-base
            # resets during k-mer extraction — an obscure failure mode.
            header = header.rstrip("\r\n")
            if not header.startswith("@"):
                raise ValueError(f"expected '@' header line, got {header!r}")
            sequence = handle.readline().rstrip("\r\n")
            separator = handle.readline().rstrip("\r\n")
            quality = handle.readline().rstrip("\r\n")
            if not separator.startswith("+"):
                raise ValueError(f"expected '+' separator line, got {separator!r}")
            if not quality and sequence:
                raise ValueError(f"truncated FASTQ record {header!r}")
            yield FastqRecord(name=header[1:], sequence=sequence, quality=quality)


def write_fastq(path: PathLike, records: Iterable[FastqRecord]) -> int:
    """Write records to *path*; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n")
            count += 1
    return count
