"""The write-ahead-log segment format (streaming-ingest durability).

The serving story of :mod:`repro.serve` is read-only: an index is built,
saved as a ``RAMBO2`` container, rotated in.  Streaming ingest
(:mod:`repro.ingest`) accepts documents *while serving*, and its durability
contract — an acknowledged append survives any crash — rests entirely on
this module: every appended document batch is framed, checksummed and
fsynced into a WAL segment **before** the in-memory delta index absorbs it.

Byte-level layout (all integers little-endian), deliberately in the same
family as :mod:`repro.io.diskformat`'s container::

    offset      size        field
    ------      ----        -----
    0           7           magic  b"RWALOG\\n"
    7           1           reserved (zero)
    8           8           header length H (uint64)
    16          H           JSON header (UTF-8)
    16 + H      ...         records, back to back

    record:
    0           4           payload length N (uint32)
    4           4           CRC32 of the payload (uint32)
    8           N           payload

    document payload:
    0           2           name length L (uint16)
    2           L           document name (UTF-8)
    2 + L       1           term kind: 0 = uint64 k-mer codes, 1 = JSON terms
    3 + L       4           term count (kind 0) / JSON byte length (kind 1)
    7 + L       ...         kind 0: count little-endian uint64 words
                            kind 1: JSON array of string terms (UTF-8)

The header pins the :class:`~repro.core.rambo.RamboConfig` and the snapshot
generation the segment extends, so replaying a segment against the wrong
base index fails loudly instead of silently building a divergent delta.
Rolled segments (see :class:`SegmentedWalWriter`) additionally pin their
``segment`` index and ``start_record`` — the global record index of the
segment's first record within its generation — so a replication catch-up
read can skip whole segments by header instead of walking every frame.

Segment naming within one generation: the first segment is
``wal-GGGGGG.log`` (unchanged from the single-segment era, so pre-rolling
WAL directories replay without migration) and rolled continuations are
``wal-GGGGGG-NNNN.seg`` for ``NNNN >= 1``.  :func:`replay_wal_generation`
walks them in order; only the *last* segment may carry a torn tail (a
crash can only tear the segment being written), torn damage anywhere
else is corruption and raises.

Crash semantics on replay (:func:`replay_wal`):

* a record whose length prefix, checksum or payload framing is damaged —
  the torn tail a crash mid-append leaves behind — ends the replay cleanly
  at the last intact record; the valid prefix length comes back so the
  engine can truncate the tail before appending again;
* everything *before* the torn tail was fsynced and is replayed exactly;
* a corrupt header (not a torn tail — the header is written and fsynced
  before any append is acknowledged) raises :class:`WalFormatError`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.rambo import RamboConfig
from repro.kmers.extraction import KmerDocument

PathLike = Union[str, Path]

#: Magic prefix of a WAL segment file.
WAL_MAGIC = b"RWALOG\n"

#: Segment format version written and accepted by this module.
WAL_VERSION = 1

#: Term payload kinds: integer k-mer codes vs JSON-encoded string terms.
TERM_KIND_CODES = 0
TERM_KIND_JSON = 1

_PRELUDE = len(WAL_MAGIC) + 1 + 8  # magic + reserved byte + header length
_RECORD_PREFIX = struct.Struct("<II")  # payload length, crc32


class WalFormatError(ValueError):
    """A WAL segment is malformed beyond torn-tail damage (bad magic,
    version mismatch, or a header that disagrees with the engine's config).

    Torn tails are *not* errors — :func:`replay_wal` reports them as data.
    """


def _json_terms(document: KmerDocument) -> List[Union[int, str]]:
    """The document's terms as a deterministic JSON-encodable list.

    Numpy integers are unwrapped to plain ints; the sort key is type-stable
    (ints before strings, each compared within its own type) so a mixed
    int/str term set — legal everywhere else in the stack — frames cleanly
    instead of dying on an int-vs-str comparison.
    """
    plain: List[Union[int, str]] = []
    for term in document.terms:
        if isinstance(term, str):
            plain.append(term)
        elif isinstance(term, (int, np.integer)) and not isinstance(term, bool):
            plain.append(int(term))
        else:
            raise WalFormatError(
                f"document {document.name!r}: term {term!r} of type "
                f"{type(term).__name__} is not WAL-encodable (int or str only)"
            )
    plain.sort(key=lambda t: (isinstance(t, str), t))
    return plain


def validate_document(document: KmerDocument) -> None:
    """Raise :class:`WalFormatError` if *document* cannot be framed.

    The engine runs this in its pre-write validation phase so a bad
    document rejects the batch *before* any WAL bytes are buffered —
    :meth:`WalWriter.append` must never discover an unencodable document
    halfway through a batch.
    """
    name_bytes = document.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise WalFormatError(
            f"document name too long for the WAL ({len(name_bytes)} bytes)"
        )
    if document.term_codes() is None:
        _json_terms(document)


def encode_document(document: KmerDocument) -> bytes:
    """Frame one document as a WAL record payload (inverse of :func:`decode_document`).

    Genomic documents travel as their raw ``uint64`` code array; string-term
    documents (text corpora) fall back to a JSON term list.  Mixed term sets
    use the JSON form too.
    """
    name_bytes = document.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise WalFormatError(f"document name too long for the WAL ({len(name_bytes)} bytes)")
    codes = document.term_codes()
    if codes is not None:
        body = codes.astype("<u8", copy=False).tobytes()
        kind, count = TERM_KIND_CODES, int(codes.size)
    else:
        body = json.dumps(_json_terms(document), separators=(",", ":")).encode("utf-8")
        kind, count = TERM_KIND_JSON, len(body)
    return b"".join(
        (
            struct.pack("<H", len(name_bytes)),
            name_bytes,
            struct.pack("<BI", kind, count),
            body,
        )
    )


def decode_document(payload: bytes) -> KmerDocument:
    """Rebuild a :class:`KmerDocument` from a record payload.

    Raises :class:`WalFormatError` on any framing inconsistency — the replay
    loop treats that exactly like a checksum failure (torn tail).
    """
    try:
        (name_len,) = struct.unpack_from("<H", payload, 0)
        name = payload[2 : 2 + name_len].decode("utf-8")
        kind, count = struct.unpack_from("<BI", payload, 2 + name_len)
        body = payload[7 + name_len :]
        if kind == TERM_KIND_CODES:
            if len(body) != count * 8:
                raise WalFormatError(
                    f"code body holds {len(body)} bytes, expected {count * 8}"
                )
            terms = np.frombuffer(body, dtype="<u8").astype(np.uint64)
        elif kind == TERM_KIND_JSON:
            if len(body) != count:
                raise WalFormatError(
                    f"JSON body holds {len(body)} bytes, expected {count}"
                )
            terms = frozenset(json.loads(body.decode("utf-8")))
        else:
            raise WalFormatError(f"unknown term kind {kind}")
        return KmerDocument(name=name, terms=terms, source_format="wal")
    except WalFormatError:
        raise
    except Exception as exc:  # noqa: BLE001 - any framing damage is one error class
        raise WalFormatError(f"malformed WAL document payload: {exc}") from exc


def _fsync_directory(path: Path) -> None:
    """Durably record a directory entry (file creation / rename)."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_wal_header(path: PathLike) -> Tuple[Dict, int]:
    """Read and validate a segment header; returns ``(header, records_offset)``.

    Raises :class:`WalFormatError` on bad magic, version mismatch, or a
    header that is itself truncated or unparsable (the header is fsynced at
    segment creation, before any append — damage there is corruption, not a
    crash artefact).
    """
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(WAL_MAGIC))
        if magic != WAL_MAGIC:
            raise WalFormatError(f"{path} is not a WAL segment (bad magic {magic!r})")
        handle.read(1)  # reserved
        raw_len = handle.read(8)
        if len(raw_len) != 8:
            raise WalFormatError(f"{path} is truncated inside the segment prelude")
        header_len = int.from_bytes(raw_len, "little")
        raw_header = handle.read(header_len)
        if len(raw_header) != header_len:
            raise WalFormatError(f"{path} is truncated inside the segment header")
        try:
            header = json.loads(raw_header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WalFormatError(f"{path} has a corrupt WAL header") from exc
    version = header.get("format_version")
    if version != WAL_VERSION:
        raise WalFormatError(
            f"{path} has unsupported WAL version {version!r} "
            f"(this reader understands version {WAL_VERSION})"
        )
    if "config" not in header or "generation" not in header:
        raise WalFormatError(f"{path} WAL header is missing config/generation")
    return header, _PRELUDE + header_len


@dataclass
class WalReplay:
    """The outcome of replaying one segment (see :func:`replay_wal`).

    ``valid_bytes`` is the length of the intact prefix — header plus every
    record that decoded and checksummed cleanly; ``torn_bytes`` is whatever
    trailing garbage a crash left after it (0 for a clean segment).
    """

    header: Dict
    documents: List[KmerDocument] = field(default_factory=list)
    records: int = 0
    valid_bytes: int = 0
    torn_bytes: int = 0
    torn_reason: Optional[str] = None

    @property
    def generation(self) -> int:
        return int(self.header["generation"])


def replay_wal(path: PathLike, expected_config: Optional[RamboConfig] = None) -> WalReplay:
    """Decode every intact record of a segment, tolerating a torn tail.

    The replay walks records in order and stops at the first frame that is
    short, fails its CRC32, or does not decode — everything from there on is
    the un-acknowledged debris of a crash mid-append and is reported via
    ``torn_bytes`` / ``torn_reason`` rather than raised.  With
    *expected_config* the segment header's pinned config must match exactly
    (:class:`WalFormatError` otherwise): replaying against a differently
    seeded or shaped base would build a silently divergent delta.
    """
    path = Path(path)
    header, offset = read_wal_header(path)
    if expected_config is not None:
        pinned = RamboConfig.from_dict(header["config"])
        if pinned != expected_config:
            raise WalFormatError(
                f"{path} was written for config {pinned}, "
                f"cannot replay against {expected_config}"
            )
    replay = WalReplay(header=header, valid_bytes=offset)
    data = path.read_bytes()
    cursor = offset
    while cursor < len(data):
        if cursor + _RECORD_PREFIX.size > len(data):
            replay.torn_reason = "short record prefix"
            break
        length, crc = _RECORD_PREFIX.unpack_from(data, cursor)
        body_start = cursor + _RECORD_PREFIX.size
        if body_start + length > len(data):
            replay.torn_reason = "record payload extends past EOF"
            break
        payload = data[body_start : body_start + length]
        if zlib.crc32(payload) != crc:
            replay.torn_reason = "payload checksum mismatch"
            break
        try:
            document = decode_document(payload)
        except WalFormatError as exc:
            replay.torn_reason = f"undecodable payload: {exc}"
            break
        replay.documents.append(document)
        replay.records += 1
        cursor = body_start + length
        replay.valid_bytes = cursor
    replay.torn_bytes = len(data) - replay.valid_bytes
    return replay


def truncate_torn_tail(path: PathLike, replay: WalReplay) -> int:
    """Cut a replayed segment back to its intact prefix; returns bytes dropped.

    Idempotent and durable (ftruncate + fsync): after this the segment ends
    exactly at the last acknowledged record, so the writer can append again
    without interleaving new records with crash debris.
    """
    if replay.torn_bytes <= 0:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(replay.valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    return replay.torn_bytes


class WalWriter:
    """Append-only writer over one WAL segment, fsyncing each committed batch.

    Creating a writer for a fresh path writes and fsyncs the segment header
    (and the directory entry) immediately — the segment is durable before
    the first append.  Re-opening an existing segment validates its header
    against *config*/*generation* and appends after the intact prefix; call
    :func:`replay_wal` + :func:`truncate_torn_tail` first after a crash.

    The durability contract of :meth:`append`: when it returns, every record
    of the batch is on stable storage (``flush`` + ``os.fsync``).  Only then
    may the engine acknowledge the write or mutate the in-memory delta.
    """

    def __init__(
        self,
        path: PathLike,
        config: RamboConfig,
        generation: int,
        *,
        fsync: bool = True,
        segment: int = 0,
        start_record: int = 0,
    ) -> None:
        self.path = Path(path)
        self.config = config
        self.generation = int(generation)
        self.segment = int(segment)
        self.start_record = int(start_record)
        self.fsync = fsync
        self.records_appended = 0
        self.sync_count = 0
        self._pending_records = 0
        if self.path.exists():
            header, _ = read_wal_header(self.path)
            pinned = RamboConfig.from_dict(header["config"])
            if pinned != config or int(header["generation"]) != self.generation:
                raise WalFormatError(
                    f"{self.path} belongs to another index generation "
                    f"(gen {header['generation']}, config {pinned})"
                )
            self.segment = int(header.get("segment", self.segment))
            self.start_record = int(header.get("start_record", self.start_record))
            self._handle = open(self.path, "ab")
        else:
            header_bytes = json.dumps(
                {
                    "format_version": WAL_VERSION,
                    "kind": "rambo-wal",
                    "config": config.to_dict(),
                    "generation": self.generation,
                    "segment": self.segment,
                    "start_record": self.start_record,
                },
                separators=(",", ":"),
            ).encode("utf-8")
            self._handle = open(self.path, "wb")
            self._handle.write(WAL_MAGIC)
            self._handle.write(b"\x00")
            self._handle.write(len(header_bytes).to_bytes(8, "little"))
            self._handle.write(header_bytes)
            self._commit()
            _fsync_directory(self.path.parent)
        self.committed_bytes = self._handle.tell()

    def _commit(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self.sync_count += 1

    @property
    def size_bytes(self) -> int:
        """Current segment length (committed plus buffered bytes)."""
        return self._handle.tell()

    def append(self, documents: Sequence[KmerDocument], *, sync: bool = True) -> int:
        """Append a document batch; returns the new segment length.

        With ``sync=True`` (the default) one flush+fsync commits the batch
        — the batch is the commit unit, matching the engine's ack
        granularity.  With ``sync=False`` the records are buffered only: a
        group-commit caller batches several appends behind one later
        :meth:`sync` and must not acknowledge anything before it returns.
        The whole batch is encoded before any byte is buffered, and a
        write-path failure truncates the segment back to the batch start:
        a failed append can never leave record bytes behind for a later
        commit to fsync as if they had been acknowledged.
        """
        payloads = [encode_document(document) for document in documents]
        start = self._handle.tell()
        try:
            for payload in payloads:
                self._handle.write(
                    _RECORD_PREFIX.pack(len(payload), zlib.crc32(payload))
                )
                self._handle.write(payload)
            if sync:
                self._commit()
        except Exception:
            try:
                # truncate() flushes any buffered partial batch first, then
                # cuts the file back to the last committed record; the seek
                # keeps size_bytes honest for the next append.
                self._handle.truncate(start)
                self._handle.seek(start)
                self._commit()
            except Exception:
                # Rollback itself failed (dying disk): poison the handle so
                # no later append can commit the orphaned bytes.
                self._handle.close()
            raise
        if sync:
            self.records_appended += len(documents)
            self.committed_bytes = self._handle.tell()
        else:
            self._pending_records += len(documents)
        return self._handle.tell()

    def sync(self) -> int:
        """Commit every buffered ``append(..., sync=False)`` batch at once.

        The group-commit durability point: when this returns, all buffered
        records are on stable storage and may be acknowledged.  Returns the
        committed segment length.  A failed commit poisons the handle —
        the storage is dying and no later append may silently succeed.
        """
        try:
            self._commit()
        except Exception:
            self._handle.close()
            raise
        self.records_appended += self._pending_records
        self._pending_records = 0
        self.committed_bytes = self._handle.tell()
        return self.committed_bytes

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def wal_segment_name(generation: int, segment: int = 0) -> str:
    """File name of one WAL segment within a generation.

    Segment 0 keeps the pre-rolling name (``wal-GGGGGG.log``) so existing
    WAL directories replay without migration; rolled continuations are
    ``wal-GGGGGG-NNNN.seg``.
    """
    if segment <= 0:
        return f"wal-{int(generation):06d}.log"
    return f"wal-{int(generation):06d}-{int(segment):04d}.seg"


def wal_segment_paths(directory: PathLike, generation: int) -> List[Path]:
    """Existing segment files of one generation, in segment order.

    Continuation segments without the base ``.log``, or a gap in the
    continuation numbering, mean a file went missing — that is corruption
    (segments are only pruned whole-generation at compaction) and raises.
    """
    directory = Path(directory)
    base = directory / wal_segment_name(generation, 0)
    continuations: List[Tuple[int, Path]] = []
    prefix = f"wal-{int(generation):06d}-"
    for path in directory.glob(f"{prefix}*.seg"):
        try:
            index = int(path.name[len(prefix) : -len(".seg")])
        except ValueError:
            continue
        continuations.append((index, path))
    continuations.sort()
    if not base.exists():
        if continuations:
            raise WalFormatError(
                f"{directory} holds rolled WAL segments for generation "
                f"{generation} but the base segment {base.name} is missing"
            )
        return []
    paths = [base]
    for expected, (index, path) in enumerate(continuations, start=1):
        if index != expected:
            raise WalFormatError(
                f"{directory} is missing WAL segment "
                f"{wal_segment_name(generation, expected)} "
                f"(found {path.name} after {paths[-1].name})"
            )
        paths.append(path)
    return paths


@dataclass
class SegmentInfo:
    """One segment's committed extent, as needed to resume writing or to
    serve a replication catch-up read without re-walking every frame."""

    path: Path
    segment: int
    start_record: int
    records: int
    committed_bytes: int
    data_offset: int

    @property
    def end_record(self) -> int:
        return self.start_record + self.records


@dataclass
class GenerationReplay:
    """The outcome of replaying every segment of one generation.

    ``documents`` concatenates the intact records of all segments in
    order.  Only the final segment may carry torn-tail damage; its
    per-segment :class:`WalReplay` is kept in ``tail`` so
    :func:`truncate_torn_generation` can cut it back.
    """

    header: Dict
    documents: List[KmerDocument] = field(default_factory=list)
    records: int = 0
    segments: List[SegmentInfo] = field(default_factory=list)
    torn_bytes: int = 0
    torn_reason: Optional[str] = None
    tail: Optional[WalReplay] = None

    @property
    def generation(self) -> int:
        return int(self.header["generation"])


def replay_wal_generation(
    directory: PathLike,
    generation: int,
    expected_config: Optional[RamboConfig] = None,
) -> Optional[GenerationReplay]:
    """Replay every segment of *generation* in order; ``None`` if none exist.

    A torn tail is legal only in the **last** segment — a crash can only
    tear the segment being written, and a new segment is opened only after
    its predecessor's final batch committed.  Torn damage in any earlier
    segment, or a segment whose pinned ``segment``/``start_record`` header
    disagrees with its position, raises :class:`WalFormatError`.
    """
    paths = wal_segment_paths(directory, generation)
    if not paths:
        return None
    result: Optional[GenerationReplay] = None
    for position, path in enumerate(paths):
        replay = replay_wal(path, expected_config)
        header = replay.header
        pinned_segment = int(header.get("segment", 0))
        pinned_start = int(header.get("start_record", 0))
        if pinned_segment != position:
            raise WalFormatError(
                f"{path} pins segment index {pinned_segment} but sits at "
                f"position {position} of generation {generation}"
            )
        if result is None:
            result = GenerationReplay(header=header)
        if pinned_start != result.records:
            raise WalFormatError(
                f"{path} pins start_record {pinned_start} but "
                f"{result.records} records precede it"
            )
        if replay.torn_bytes and position != len(paths) - 1:
            raise WalFormatError(
                f"{path} has torn-tail damage ({replay.torn_reason}) but is "
                f"not the final segment of generation {generation} — a "
                f"crash cannot tear a sealed segment; this is corruption"
            )
        _, data_offset = read_wal_header(path)
        result.segments.append(
            SegmentInfo(
                path=path,
                segment=position,
                start_record=result.records,
                records=replay.records,
                committed_bytes=replay.valid_bytes,
                data_offset=data_offset,
            )
        )
        result.documents.extend(replay.documents)
        result.records += replay.records
        if position == len(paths) - 1:
            result.torn_bytes = replay.torn_bytes
            result.torn_reason = replay.torn_reason
            result.tail = replay
    return result


def truncate_torn_generation(replay: GenerationReplay) -> int:
    """Cut the generation's final segment back to its intact prefix."""
    if replay.tail is None or replay.torn_bytes <= 0:
        return 0
    return truncate_torn_tail(replay.segments[-1].path, replay.tail)


class SegmentedWalWriter:
    """A :class:`WalWriter` that rolls to a fresh segment at a size bound.

    Rolling bounds two things: the byte range any single replay or
    replication catch-up read must walk, and the copy cost of shipping a
    segment.  ``segment_bytes=0`` disables rolling (one segment per
    generation — the pre-rolling behaviour).  The roll happens *before* a
    batch once the current segment has reached the bound, so a batch never
    straddles segments and the per-batch commit unit is unchanged.  Any
    group-commit records still buffered in the old segment are synced as
    part of sealing it — sealed segments are always fully committed, which
    is what lets :func:`replay_wal_generation` treat torn damage anywhere
    but the last segment as corruption.
    """

    def __init__(
        self,
        directory: PathLike,
        config: RamboConfig,
        generation: int,
        *,
        segment_bytes: int = 0,
        fsync: bool = True,
        segments: Optional[Sequence[SegmentInfo]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.config = config
        self.generation = int(generation)
        self.segment_bytes = int(segment_bytes)
        self.fsync = fsync
        self._sealed: List[SegmentInfo] = []
        self._sealed_bytes = 0
        self._sealed_records = 0
        self._sealed_syncs = 0
        self._sealed_session_records = 0
        self._tail_resumed_records = 0
        self.rolls = 0
        if segments:
            for info in segments[:-1]:
                self._sealed.append(info)
                self._sealed_bytes += info.committed_bytes
                self._sealed_records += info.records
            tail = segments[-1]
            self._tail_resumed_records = tail.records
            self._writer = WalWriter(
                tail.path,
                config,
                self.generation,
                fsync=fsync,
                segment=tail.segment,
                start_record=tail.start_record,
            )
        else:
            self._writer = WalWriter(
                self.directory / wal_segment_name(self.generation, 0),
                config,
                self.generation,
                fsync=fsync,
            )
        _, self._writer_data_offset = read_wal_header(self._writer.path)

    @property
    def path(self) -> Path:
        """The segment currently being written (stats / display)."""
        return self._writer.path

    @property
    def size_bytes(self) -> int:
        """Total WAL bytes across all segments of this generation."""
        return self._sealed_bytes + self._writer.size_bytes

    @property
    def records_appended(self) -> int:
        """Records committed through *this writer* since it was opened."""
        return self._sealed_session_records + self._writer.records_appended

    @property
    def committed_records(self) -> int:
        """Total committed records in the generation (all segments)."""
        return (
            self._sealed_records
            + self._tail_resumed_records
            + self._writer.records_appended
        )

    @property
    def total_records(self) -> int:
        """Committed plus still-buffered records (group-commit in flight)."""
        return self.committed_records + self._writer._pending_records

    @property
    def sync_count(self) -> int:
        """fsync batches issued across all segments (group-commit metric)."""
        return self._sealed_syncs + self._writer.sync_count

    @property
    def segment_count(self) -> int:
        return len(self._sealed) + 1

    def segment_infos(self) -> List[SegmentInfo]:
        """Committed extent of every segment, current one included."""
        infos = list(self._sealed)
        infos.append(
            SegmentInfo(
                path=self._writer.path,
                segment=self._writer.segment,
                start_record=self._writer.start_record,
                records=self.committed_records - self._writer.start_record,
                committed_bytes=self._writer.committed_bytes,
                data_offset=self._writer_data_offset,
            )
        )
        return infos

    def _maybe_roll(self) -> None:
        if self.segment_bytes <= 0:
            return
        if self._writer.size_bytes < self.segment_bytes:
            return
        self._writer.sync()
        next_segment = self._writer.segment + 1
        next_start = self.committed_records
        sealed = SegmentInfo(
            path=self._writer.path,
            segment=self._writer.segment,
            start_record=self._writer.start_record,
            records=next_start - self._writer.start_record,
            committed_bytes=self._writer.committed_bytes,
            data_offset=self._writer_data_offset,
        )
        self._sealed.append(sealed)
        self._sealed_bytes += sealed.committed_bytes
        self._sealed_records += sealed.records
        self._sealed_syncs += self._writer.sync_count
        self._sealed_session_records += self._writer.records_appended
        self._tail_resumed_records = 0
        self._writer.close()
        self._writer = WalWriter(
            self.directory / wal_segment_name(self.generation, next_segment),
            self.config,
            self.generation,
            fsync=self.fsync,
            segment=next_segment,
            start_record=next_start,
        )
        _, self._writer_data_offset = read_wal_header(self._writer.path)
        self.rolls += 1

    def append(self, documents: Sequence[KmerDocument], *, sync: bool = True) -> int:
        """Append a batch (rolling first if the bound is reached); returns
        the generation's total WAL length."""
        self._maybe_roll()
        self._writer.append(documents, sync=sync)
        return self.size_bytes

    def sync(self) -> int:
        """Commit buffered group-commit batches; returns committed records."""
        self._writer.sync()
        return self.committed_records

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "SegmentedWalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
