"""Minimal, strict FASTA reader and writer.

FASTA records are ``>header`` lines followed by one or more sequence lines.
The reader is a generator so multi-gigabyte assemblies can be streamed without
loading the whole file; the writer wraps sequences at a configurable line
width, matching what genome assemblers emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

PathLike = Union[str, Path]


@dataclass(frozen=True)
class FastaRecord:
    """One FASTA record: identifier, free-text description and sequence."""

    identifier: str
    description: str
    sequence: str

    def __len__(self) -> int:
        return len(self.sequence)


def _parse_header(line: str) -> tuple:
    body = line[1:].strip()
    if not body:
        raise ValueError("FASTA header line has no identifier")
    parts = body.split(None, 1)
    identifier = parts[0]
    description = parts[1] if len(parts) > 1 else ""
    return identifier, description


def _iter_records(handle: TextIO) -> Iterator[FastaRecord]:
    identifier = None
    description = ""
    chunks: List[str] = []
    for raw_line in handle:
        # Strip \r as well as \n: FASTA files written on Windows (or fetched
        # through tools that normalise to CRLF) would otherwise leave a
        # carriage return on every sequence chunk, corrupting the k-mers.
        line = raw_line.rstrip("\r\n")
        if not line:
            continue
        if line.startswith(">"):
            if identifier is not None:
                yield FastaRecord(identifier, description, "".join(chunks))
            identifier, description = _parse_header(line)
            chunks = []
        else:
            if identifier is None:
                raise ValueError("FASTA file does not start with a '>' header line")
            chunks.append(line.strip())
    if identifier is not None:
        yield FastaRecord(identifier, description, "".join(chunks))


def read_fasta(path: PathLike) -> Iterator[FastaRecord]:
    """Stream the records of a FASTA file.

    Raises :class:`ValueError` on malformed files (sequence data before the
    first header).
    """
    with open(path, "r", encoding="utf-8") as handle:
        yield from _iter_records(handle)


def write_fasta(path: PathLike, records: Iterable[FastaRecord], line_width: int = 80) -> int:
    """Write records to *path*; returns the number of records written."""
    if line_width <= 0:
        raise ValueError(f"line_width must be positive, got {line_width}")
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            header = f">{record.identifier}"
            if record.description:
                header += f" {record.description}"
            handle.write(header + "\n")
            seq = record.sequence
            for start in range(0, len(seq), line_width):
                handle.write(seq[start : start + line_width] + "\n")
            count += 1
    return count
