"""repro — a reproduction of RAMBO (Repeated And Merged BloOm Filter), SIGMOD 2021.

RAMBO answers multi-set membership queries ("which of these K documents
contain this k-mer / word / term?") with a Count-Min-Sketch arrangement of
Bloom filters: R repetitions, each partitioning the documents into B groups
compressed into one Bloom Filter of the Union.  The package ships the index,
every substrate it needs (hashing, Bloom filters, k-mer machinery, file
formats), the baselines the paper compares against (COBS/BIGSI, SBT, SSBT,
HowDeSBT, an exact inverted index), workload simulators standing in for the
paper's 170TB archive and web corpora, and an experiment harness regenerating
every table and figure of the evaluation.

Quickstart
----------
>>> from repro import Rambo, RamboConfig, KmerDocument
>>> index = Rambo(RamboConfig(num_partitions=4, repetitions=3, bfu_bits=1 << 12, k=5))
>>> index.add_document(KmerDocument(name="genomeA", terms=frozenset({"ACGTA", "CGTAC"})))
>>> index.add_document(KmerDocument(name="genomeB", terms=frozenset({"TTTTT"})))
>>> sorted(index.query_term("ACGTA").documents)
['genomeA']
"""

from repro.core.base import MembershipIndex, QueryResult
from repro.core.executor import get_num_threads, num_threads, set_num_threads
from repro.core.rambo import Rambo, RamboConfig
from repro.core.distributed import DistributedRambo, stack_shards
from repro.core.folding import fold_rambo, fold_to_target
from repro.core.parallel import ParallelBuilder, merge_indexes
from repro.core.serialization import load_index, open_index, save_index
from repro.bloom import BloomFilter, CountingBloomFilter, ScalableBloomFilter
from repro.sketch import CountMinSketch
from repro.kmers import (
    KmerDocument,
    document_from_sequences,
    extract_kmer_codes,
    extract_kmers,
)
from repro.baselines import (
    CobsIndex,
    HowDeSbt,
    InvertedIndex,
    SequenceBloomTree,
    SplitSequenceBloomTree,
)

__version__ = "1.0.0"

__all__ = [
    "MembershipIndex",
    "QueryResult",
    "Rambo",
    "RamboConfig",
    "DistributedRambo",
    "stack_shards",
    "fold_rambo",
    "fold_to_target",
    "ParallelBuilder",
    "merge_indexes",
    "load_index",
    "open_index",
    "save_index",
    "get_num_threads",
    "num_threads",
    "set_num_threads",
    "BloomFilter",
    "ScalableBloomFilter",
    "CountingBloomFilter",
    "CountMinSketch",
    "KmerDocument",
    "document_from_sequences",
    "extract_kmers",
    "extract_kmer_codes",
    "CobsIndex",
    "SequenceBloomTree",
    "SplitSequenceBloomTree",
    "HowDeSbt",
    "InvertedIndex",
    "__version__",
]
