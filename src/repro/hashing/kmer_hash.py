"""Integer encodings and rolling hashes for k-mers.

The paper indexes 31-mers because a 31-mer fits in a 64-bit integer with the
standard 2-bit nucleotide encoding (A=0, C=1, G=2, T=3).  This module provides
that encoding, its inverse, the canonical (strand-neutral) form, and a rolling
hasher that produces the 2-bit code of every k-mer of a sequence in a single
left-to-right scan — the building block the extraction and index layers use so
that long sequences are not re-encoded k times per position.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

_BASE_TO_BITS = {"A": 0, "C": 1, "G": 2, "T": 3, "a": 0, "c": 1, "g": 2, "t": 3}
_BITS_TO_BASE = "ACGT"
# Complement in 2-bit space: A<->T (0<->3), C<->G (1<->2) i.e. x -> 3 - x.


def kmer_to_int(kmer: str) -> int:
    """Encode a DNA k-mer into its 2-bit integer representation.

    Raises :class:`ValueError` on characters outside ``ACGT`` (case
    insensitive) and on k-mers longer than 31 bases (which would not fit the
    64-bit budget the paper's design assumes).
    """
    if len(kmer) > 31:
        raise ValueError(f"k-mer length {len(kmer)} exceeds the 31-base 64-bit budget")
    value = 0
    for base in kmer:
        try:
            code = _BASE_TO_BITS[base]
        except KeyError:
            raise ValueError(f"invalid nucleotide {base!r} in k-mer {kmer!r}") from None
        value = (value << 2) | code
    return value


def int_to_kmer(value: int, k: int) -> str:
    """Decode a 2-bit integer back into a DNA string of length *k*."""
    if value < 0:
        raise ValueError(f"encoded k-mer must be non-negative, got {value}")
    if value >> (2 * k):
        raise ValueError(f"value {value} does not fit in {k} bases")
    bases = []
    for shift in range(2 * (k - 1), -2, -2):
        bases.append(_BITS_TO_BASE[(value >> shift) & 0b11])
    return "".join(bases)


def reverse_complement(kmer: str) -> str:
    """Reverse complement of a DNA string (A<->T, C<->G, reversed)."""
    complement = {"A": "T", "T": "A", "C": "G", "G": "C", "a": "t", "t": "a", "c": "g", "g": "c"}
    try:
        return "".join(complement[b] for b in reversed(kmer))
    except KeyError as exc:
        raise ValueError(f"invalid nucleotide in {kmer!r}") from exc


def reverse_complement_int(value: int, k: int) -> int:
    """Reverse complement in 2-bit space without decoding to a string."""
    rc = 0
    for _ in range(k):
        rc = (rc << 2) | (3 - (value & 0b11))
        value >>= 2
    return rc


def canonical_int(value: int, k: int) -> int:
    """Canonical (strand-neutral) representation: min(kmer, revcomp(kmer)).

    Sequencing reads come from either DNA strand; indexing the canonical form
    makes membership queries strand-agnostic, matching what McCortex and COBS
    do in the paper's pipeline.
    """
    rc = reverse_complement_int(value, k)
    return value if value <= rc else rc


def canonical_kmer(kmer: str) -> str:
    """Canonical form of a k-mer given as a string."""
    rc = reverse_complement(kmer)
    return kmer.upper() if kmer.upper() <= rc.upper() else rc.upper()


class RollingKmerHasher:
    """Streaming 2-bit encoder over a nucleotide sequence.

    Feeding bases one at a time yields the encoded k-mer ending at each
    position once ``k`` valid bases have been seen.  Ambiguous bases (``N``
    and anything outside ``ACGT``) reset the window, mirroring how real
    k-mer counters treat them.

    Example
    -------
    >>> hasher = RollingKmerHasher(k=3)
    >>> [code for code in hasher.feed("ACGT") if code is not None]
    [6, 27]
    """

    def __init__(self, k: int, canonical: bool = False) -> None:
        if not (1 <= k <= 31):
            raise ValueError(f"k must be in [1, 31], got {k}")
        self.k = k
        self.canonical = canonical
        self._mask = (1 << (2 * k)) - 1
        self._value = 0
        self._valid = 0

    def reset(self) -> None:
        """Forget the current window (used across sequence boundaries)."""
        self._value = 0
        self._valid = 0

    def push(self, base: str) -> Optional[int]:
        """Consume one base; return the k-mer code ending here, if complete."""
        code = _BASE_TO_BITS.get(base)
        if code is None:
            self.reset()
            return None
        self._value = ((self._value << 2) | code) & self._mask
        self._valid += 1
        if self._valid < self.k:
            return None
        value = self._value
        if self.canonical:
            value = canonical_int(value, self.k)
        return value

    def feed(self, sequence: str) -> Iterator[Optional[int]]:
        """Yield the (possibly canonical) code after each consumed base."""
        for base in sequence:
            yield self.push(base)

    def kmers(self, sequence: str) -> List[int]:
        """All complete k-mer codes of *sequence*, skipping ambiguous windows."""
        self.reset()
        return [code for code in self.feed(sequence) if code is not None]
