"""Hash function families used throughout the RAMBO reproduction.

The paper relies on three distinct kinds of hashing:

* **Item hashing** inside each Bloom Filter of the Union (BFU).  We use
  MurmurHash3 (128-bit, x64 variant) and derive the ``eta`` probe positions
  with the Kirsch--Mitzenmacher double-hashing trick
  (:func:`repro.hashing.murmur3.double_hashes`).
* **Partition hashing** ``phi_i`` that assigns a document identity to one of
  ``B`` partitions in repetition ``i``.  The paper requires a 2-universal
  family; we provide both the classical Carter--Wegman construction over a
  Mersenne prime and the multiply-shift family
  (:mod:`repro.hashing.universal`).
* **Node routing** ``tau`` used by the distributed construction of Section
  5.3, which is just another independent member of the same universal family.

All functions are deterministic given a seed, which is what makes fold-over
and distributed stacking possible: every machine must agree on every hash.
"""

from repro.hashing.murmur3 import (
    murmur3_x64_128,
    murmur3_64,
    murmur3_32,
    double_hashes,
    double_hashes_batch,
    hash_positions,
)
from repro.hashing.universal import (
    MERSENNE_PRIME_61,
    CarterWegmanHash,
    MultiplyShiftHash,
    PartitionHashFamily,
    TwoLevelPartitionHash,
)
from repro.hashing.kmer_hash import (
    kmer_to_int,
    int_to_kmer,
    canonical_int,
    RollingKmerHasher,
)

__all__ = [
    "murmur3_x64_128",
    "murmur3_64",
    "murmur3_32",
    "double_hashes",
    "double_hashes_batch",
    "hash_positions",
    "MERSENNE_PRIME_61",
    "CarterWegmanHash",
    "MultiplyShiftHash",
    "PartitionHashFamily",
    "TwoLevelPartitionHash",
    "kmer_to_int",
    "int_to_kmer",
    "canonical_int",
    "RollingKmerHasher",
]
