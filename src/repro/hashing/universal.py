"""2-universal hash families for document partitioning.

RAMBO's partition functions ``phi_1 .. phi_R`` map a document identity to one
of ``B`` cells.  The paper requires 2-universality: for any two distinct
documents the collision probability is exactly ``1/B``.  Two standard
constructions are provided:

* :class:`CarterWegmanHash` — ``((a*x + b) mod p) mod B`` over the Mersenne
  prime ``p = 2**61 - 1``; the textbook family with provable guarantees.
* :class:`MultiplyShiftHash` — Dietzfelbinger's multiply-shift family, faster
  and sufficient in practice (used for power-of-two ranges).

:class:`PartitionHashFamily` bundles ``R`` independent members and is the
object the RAMBO index actually consumes.  :class:`TwoLevelPartitionHash`
implements the composed routing hash ``b * tau(D) + phi(D)`` of Section 5.3
used to shard construction across a cluster without inter-node communication.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.hashing.murmur3 import murmur3_64

MERSENNE_PRIME_61 = (1 << 61) - 1
_MASK64 = 0xFFFFFFFFFFFFFFFF

Key = Union[int, str, bytes]


def _key_to_int(key: Key) -> int:
    """Map an arbitrary document identity to a non-negative integer.

    Integers map to themselves; strings and bytes are hashed with a fixed-seed
    MurmurHash3 so the mapping is stable across processes and machines (the
    built-in ``hash`` is randomised per process and would break distributed
    seed consistency).
    """
    if isinstance(key, bool):  # bool is an int subclass; reject to avoid surprises
        raise TypeError("boolean keys are not supported")
    if isinstance(key, int):
        if key < 0:
            raise ValueError(f"integer keys must be non-negative, got {key}")
        return key
    if isinstance(key, (str, bytes)):
        return murmur3_64(key, seed=0x5EED)
    raise TypeError(f"unsupported key type: {type(key)!r}")


@dataclass(frozen=True)
class CarterWegmanHash:
    """Carter--Wegman 2-universal hash ``h(x) = ((a*x + b) mod p) mod range``.

    Parameters
    ----------
    a, b:
        Random coefficients with ``1 <= a < p`` and ``0 <= b < p``.
    range_size:
        Output range ``B``.
    prime:
        Field prime; defaults to the Mersenne prime ``2**61 - 1``.
    """

    a: int
    b: int
    range_size: int
    prime: int = MERSENNE_PRIME_61

    def __post_init__(self) -> None:
        if not (1 <= self.a < self.prime):
            raise ValueError(f"coefficient a must be in [1, p), got {self.a}")
        if not (0 <= self.b < self.prime):
            raise ValueError(f"coefficient b must be in [0, p), got {self.b}")
        if self.range_size <= 0:
            raise ValueError(f"range_size must be positive, got {self.range_size}")

    @classmethod
    def random(cls, range_size: int, seed: int) -> "CarterWegmanHash":
        """Draw a random member of the family from a seeded RNG."""
        rng = random.Random(seed)
        a = rng.randrange(1, MERSENNE_PRIME_61)
        b = rng.randrange(0, MERSENNE_PRIME_61)
        return cls(a=a, b=b, range_size=range_size)

    def __call__(self, key: Key) -> int:
        x = _key_to_int(key)
        return ((self.a * x + self.b) % self.prime) % self.range_size

    def with_range(self, range_size: int) -> "CarterWegmanHash":
        """Return the same hash coefficients with a different output range."""
        return CarterWegmanHash(self.a, self.b, range_size, self.prime)


@dataclass(frozen=True)
class MultiplyShiftHash:
    """Dietzfelbinger multiply-shift hash into ``[0, 2**out_bits)``.

    ``h(x) = (a * x mod 2**64) >> (64 - out_bits)`` with odd multiplier ``a``.
    """

    a: int
    out_bits: int

    def __post_init__(self) -> None:
        if self.a % 2 == 0:
            raise ValueError("multiplier a must be odd")
        if not (1 <= self.out_bits <= 63):
            raise ValueError(f"out_bits must be in [1, 63], got {self.out_bits}")

    @classmethod
    def random(cls, out_bits: int, seed: int) -> "MultiplyShiftHash":
        rng = random.Random(seed)
        a = rng.getrandbits(64) | 1
        return cls(a=a, out_bits=out_bits)

    @property
    def range_size(self) -> int:
        return 1 << self.out_bits

    def __call__(self, key: Key) -> int:
        x = _key_to_int(key)
        return ((self.a * x) & _MASK64) >> (64 - self.out_bits)


@dataclass
class PartitionHashFamily:
    """``R`` independent 2-universal partition hashes ``phi_1 .. phi_R``.

    This is the object used by the RAMBO index: ``family(doc_id, r)`` gives
    the partition cell of ``doc_id`` in repetition ``r``.

    Parameters
    ----------
    num_partitions:
        Output range ``B`` shared by every member.
    repetitions:
        Number of independent members ``R``.
    seed:
        Master seed; member ``r`` uses ``seed + r`` through a deterministic
        mixer so two machines given the same master seed produce identical
        partitions (a requirement for distributed stacking and fold-over).
    """

    num_partitions: int
    repetitions: int
    seed: int = 0
    _members: List[CarterWegmanHash] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {self.num_partitions}")
        if self.repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {self.repetitions}")
        if not self._members:
            self._members = [
                CarterWegmanHash.random(self.num_partitions, seed=self._member_seed(r))
                for r in range(self.repetitions)
            ]

    def _member_seed(self, repetition: int) -> int:
        return (self.seed * 0x9E3779B1 + repetition * 0x85EBCA77) & _MASK64

    def __call__(self, key: Key, repetition: int) -> int:
        """Partition cell of *key* in the given repetition."""
        return self._members[repetition](key)

    def assign(self, key: Key) -> List[int]:
        """Partition cells of *key* in every repetition, as a list of length R."""
        return [member(key) for member in self._members]

    def with_partitions(self, num_partitions: int) -> "PartitionHashFamily":
        """Same coefficients, different range — used to model fold-over.

        Folding a RAMBO table from ``B`` to ``B/2`` partitions ORs BFU ``b``
        with BFU ``b + B/2``; the equivalent partition function is
        ``phi(x) mod (B/2)`` only when ``B`` is halved, so we expose the raw
        coefficient reuse here and let :mod:`repro.core.folding` apply the
        modulo reduction explicitly.
        """
        members = [m.with_range(num_partitions) for m in self._members]
        return PartitionHashFamily(
            num_partitions=num_partitions,
            repetitions=self.repetitions,
            seed=self.seed,
            _members=members,
        )


@dataclass
class TwoLevelPartitionHash:
    """Composed routing hash of Section 5.3: ``b * tau(D) + phi_node(D)``.

    ``tau`` routes a document to one of ``num_nodes`` machines and
    ``phi_node`` (a node-local family with ``b = partitions_per_node`` cells)
    places it inside that machine's shard.  The composition is again
    2-universal over the global range ``B = num_nodes * partitions_per_node``,
    which is exactly the property the paper uses to argue that the distributed
    build equals a single-machine build with the larger ``B``.
    """

    num_nodes: int
    partitions_per_node: int
    repetitions: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.partitions_per_node <= 0:
            raise ValueError(
                f"partitions_per_node must be positive, got {self.partitions_per_node}"
            )
        self._router = CarterWegmanHash.random(self.num_nodes, seed=self.seed ^ 0xA5A5A5A5)
        self._local = PartitionHashFamily(
            num_partitions=self.partitions_per_node,
            repetitions=self.repetitions,
            seed=self.seed,
        )

    @property
    def total_partitions(self) -> int:
        """Global number of partitions ``B`` of the stacked RAMBO."""
        return self.num_nodes * self.partitions_per_node

    def node_of(self, key: Key) -> int:
        """Machine index ``tau(D)`` the document is routed to."""
        return self._router(key)

    def local_partition(self, key: Key, repetition: int) -> int:
        """Node-local partition ``phi_i(D)`` inside the assigned machine."""
        return self._local(key, repetition)

    def __call__(self, key: Key, repetition: int) -> int:
        """Global partition ``b * tau(D) + phi_i(D)``."""
        return self.partitions_per_node * self.node_of(key) + self.local_partition(key, repetition)

    def global_family(self) -> PartitionHashFamily:
        """A :class:`PartitionHashFamily`-compatible view over the global range.

        Returned object evaluates the two-level composition; it is what a
        single-machine RAMBO with ``B = total_partitions`` would be handed to
        verify that the distributed construction is equivalent.
        """
        outer = self

        class _ComposedFamily(PartitionHashFamily):
            def __init__(self) -> None:  # bypass parent __init__ on purpose
                self.num_partitions = outer.total_partitions
                self.repetitions = outer.repetitions
                self.seed = outer.seed
                self._members = []

            def __call__(self, key: Key, repetition: int) -> int:
                return outer(key, repetition)

            def assign(self, key: Key) -> List[int]:
                return [outer(key, r) for r in range(outer.repetitions)]

        return _ComposedFamily()
