"""Pure-Python MurmurHash3 and probe-position derivation for Bloom filters.

MurmurHash3 is the hash the original RAMBO / COBS / BIGSI implementations use
for k-mer hashing.  This module implements the x64 128-bit variant exactly
(it matches the reference C++ ``MurmurHash3_x64_128``) plus convenience
wrappers returning 64-bit and 32-bit digests.

Because Python integers are arbitrary precision, every operation is masked to
64 bits.  The implementation favours clarity over raw speed; the hot path used
by the index classes (:func:`hash_positions`) is the one place where we keep
allocations to a minimum.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

_MASK64 = 0xFFFFFFFFFFFFFFFF
_C1 = 0x87C37B91114253D5
_C2 = 0x4CF5AD432745937F

BytesLike = Union[bytes, bytearray, memoryview, str]


def _as_bytes(key: BytesLike) -> bytes:
    """Normalise *key* to ``bytes`` (strings are UTF-8 encoded)."""
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, (bytearray, memoryview)):
        return bytes(key)
    return key


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _fmix64(k: int) -> int:
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def murmur3_x64_128(key: BytesLike, seed: int = 0) -> Tuple[int, int]:
    """Compute the 128-bit MurmurHash3 (x64 variant) of *key*.

    Parameters
    ----------
    key:
        The data to hash.  Strings are encoded as UTF-8.
    seed:
        A 32/64-bit seed.  Different seeds give independent-looking hashes.

    Returns
    -------
    tuple of int
        Two unsigned 64-bit halves ``(h1, h2)`` of the 128-bit digest.
    """
    data = _as_bytes(key)
    length = len(data)
    nblocks = length // 16

    h1 = seed & _MASK64
    h2 = seed & _MASK64

    # body
    for block in range(nblocks):
        offset = block * 16
        k1 = int.from_bytes(data[offset : offset + 8], "little")
        k2 = int.from_bytes(data[offset + 8 : offset + 16], "little")

        k1 = (k1 * _C1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & _MASK64
        h1 ^= k1

        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64

        k2 = (k2 * _C2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & _MASK64
        h2 ^= k2

        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64

    # tail
    tail = data[nblocks * 16 :]
    k1 = 0
    k2 = 0
    tail_len = len(tail)
    if tail_len >= 9:
        for i in range(tail_len - 1, 7, -1):
            k2 = (k2 << 8) | tail[i]
        k2 = (k2 * _C2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & _MASK64
        h2 ^= k2
    if tail_len > 0:
        for i in range(min(tail_len, 8) - 1, -1, -1):
            k1 = (k1 << 8) | tail[i]
        k1 = (k1 * _C1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & _MASK64
        h1 ^= k1

    # finalization
    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    h1 = _fmix64(h1)
    h2 = _fmix64(h2)
    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    return h1, h2


def murmur3_64(key: BytesLike, seed: int = 0) -> int:
    """Return the first 64 bits of the 128-bit MurmurHash3 digest."""
    return murmur3_x64_128(key, seed)[0]


def murmur3_32(key: BytesLike, seed: int = 0) -> int:
    """Return a 32-bit digest derived from the 128-bit MurmurHash3."""
    return murmur3_x64_128(key, seed)[0] & 0xFFFFFFFF


def double_hashes(key: BytesLike, count: int, modulus: int, seed: int = 0) -> List[int]:
    """Derive *count* probe positions in ``[0, modulus)`` for *key*.

    Uses the Kirsch--Mitzenmacher construction ``g_i(x) = h1(x) + i * h2(x)``
    which provides the same asymptotic false-positive behaviour as ``count``
    independent hash functions while only evaluating MurmurHash3 once.

    Parameters
    ----------
    key:
        Item to hash.
    count:
        Number of probe positions (``eta`` in the paper).
    modulus:
        Size of the bit array the positions index into.
    seed:
        Seed forwarded to MurmurHash3; each Bloom filter instance uses its
        own seed so that unions across filters remain meaningful.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    h1, h2 = murmur3_x64_128(key, seed)
    # Force h2 odd so successive probes cycle through the full range even for
    # power-of-two moduli.
    h2 |= 1
    return [(h1 + i * h2) % modulus for i in range(count)]


def hash_positions(
    keys: Iterable[BytesLike], count: int, modulus: int, seed: int = 0
) -> List[List[int]]:
    """Vector form of :func:`double_hashes` over an iterable of keys."""
    return [double_hashes(key, count, modulus, seed) for key in keys]


def _rotl64_arr(x: np.ndarray, r: int) -> np.ndarray:
    return (x << np.uint64(r)) | (x >> np.uint64(64 - r))


def _fmix64_arr(k: np.ndarray) -> np.ndarray:
    k = k ^ (k >> np.uint64(33))
    k = k * np.uint64(0xFF51AFD7ED558CCD)
    k = k ^ (k >> np.uint64(33))
    k = k * np.uint64(0xC4CEB9FE1A85EC53)
    k = k ^ (k >> np.uint64(33))
    return k


def _murmur3_u64_batch(values: np.ndarray, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised ``murmur3_x64_128`` over 8-byte little-endian keys.

    A non-negative integer key is normalised to its 8-byte little-endian
    encoding everywhere in the library (:func:`_normalise_key`), which is
    exactly the ``uint64`` value itself — so for integer keys (2-bit k-mer
    codes, the batch-query hot path) the whole digest reduces to the 8-byte
    tail + finalisation of the scalar algorithm, computed here on ``uint64``
    arrays whose natural wraparound matches the 64-bit masking.

    Returns the ``(h1, h2)`` halves as two ``uint64`` arrays; bit-for-bit
    identical to calling :func:`murmur3_x64_128` per key.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    h1 = np.full(values.shape, np.uint64(seed & _MASK64))
    h2 = h1.copy()
    # tail (length 8 -> k1 only)
    k1 = values * np.uint64(_C1)
    k1 = _rotl64_arr(k1, 31)
    k1 = k1 * np.uint64(_C2)
    h1 = h1 ^ k1
    # finalisation
    length = np.uint64(8)
    h1 = h1 ^ length
    h2 = h2 ^ length
    h1 = h1 + h2
    h2 = h2 + h1
    h1 = _fmix64_arr(h1)
    h2 = _fmix64_arr(h2)
    h1 = h1 + h2
    h2 = h2 + h1
    return h1, h2


def normalise_batch_key(key: Union[int, BytesLike]) -> Union[int, BytesLike]:
    """Normalise and validate one key against the batch-hash contract.

    The single source of truth for what the batched digest accepts: bools
    and numpy integer scalars become plain ints; negative ints raise
    ``ValueError``, >64-bit ints raise ``OverflowError``, and anything that
    is not an int/str/bytes raises ``TypeError`` — the same errors the
    scalar ``_normalise_key`` path produces.  Shared by
    :func:`double_hashes_batch` and the upfront batch validators
    (``KmerDocument.validated_hash_keys``) so pre-validation can never
    drift from what hashing actually accepts.
    """
    if isinstance(key, (bool, np.integer)):
        key = int(key)
    if isinstance(key, int):
        if key < 0:
            raise ValueError(f"integer keys must be non-negative, got {key}")
        if key >= 1 << 64:
            raise OverflowError(f"integer keys must fit 64 bits, got {key}")
    elif not isinstance(key, (str, bytes, bytearray, memoryview)):
        raise TypeError(f"unsupported key type: {type(key)!r}")
    return key


def _derive_positions(h1: np.ndarray, h2: np.ndarray, count: int, modulus: int) -> np.ndarray:
    """Kirsch--Mitzenmacher position derivation on uint64 digest arrays.

    ``(h1 + i*h2) % m == (h1%m + i*(h2%m)) % m`` in exact arithmetic;
    reducing the operands first keeps every intermediate below 2**64 so the
    uint64 computation matches the arbitrary-precision scalar path bit for
    bit (the caller guarantees ``count * modulus < 2**64``).
    """
    m = np.uint64(modulus)
    steps = np.arange(count, dtype=np.uint64)
    h2 = h2 | np.uint64(1)
    return ((h1[:, None] % m + steps[None, :] * (h2[:, None] % m)) % m).astype(np.int64)


def double_hashes_batch(
    keys: Union[Iterable[Union[int, BytesLike]], np.ndarray],
    count: int,
    modulus: int,
    seed: int = 0,
) -> np.ndarray:
    """Batched :func:`double_hashes`: an ``(n_keys, count)`` position matrix.

    Row ``i`` equals ``double_hashes(keys[i], count, modulus, seed)`` exactly.
    A numpy integer array (the term-code arrays the readers and simulators
    produce) is digested whole — no per-key Python work at all; any other
    iterable of keys is normalised and validated here (the single home of
    the key contract every batch caller shares) and partitioned so integer
    keys (2-bit k-mer codes) still go through the vectorised pass while
    string/bytes keys fall back to the scalar MurmurHash3 per key, with the
    position derivation vectorised in both cases.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    exact_fallback = count * modulus >= 1 << 64 or modulus >= 1 << 63
    if isinstance(keys, np.ndarray):
        if keys.ndim != 1:
            raise ValueError(f"keys array must be 1-D, got shape {keys.shape}")
        if not np.issubdtype(keys.dtype, np.integer):
            raise TypeError(f"keys array must have an integer dtype, got {keys.dtype}")
        if np.issubdtype(keys.dtype, np.signedinteger) and keys.size and int(keys.min()) < 0:
            # Same error contract as the scalar path's _normalise_key.
            raise ValueError(f"integer keys must be non-negative, got {int(keys.min())}")
        if not exact_fallback:
            if keys.size == 0:
                return np.zeros((0, count), dtype=np.int64)
            h1, h2 = _murmur3_u64_batch(keys, seed)
            return _derive_positions(h1, h2, count, modulus)
        keys = [int(key) for key in keys]
    keys = [normalise_batch_key(key) for key in keys]
    if not keys:
        return np.zeros((0, count), dtype=np.int64)
    if exact_fallback:
        # The uint64 position derivation below could wrap, and the int64
        # result dtype cannot represent positions >= 2**63; such geometries
        # never occur in practice but exactness is part of the contract.
        return np.asarray(
            [
                double_hashes(
                    key.to_bytes(8, "little") if isinstance(key, int) else key,
                    count,
                    modulus,
                    seed,
                )
                for key in keys
            ],
            dtype=np.uint64 if modulus >= 1 << 63 else np.int64,
        )
    # Partition by key type so one stray string in a chunk of int k-mer
    # codes doesn't degrade the whole chunk to the per-key scalar digest.
    int_rows: List[int] = []
    other_rows: List[int] = []
    for i, key in enumerate(keys):
        if isinstance(key, int):
            int_rows.append(i)
        else:
            other_rows.append(i)
    positions = np.empty((len(keys), count), dtype=np.int64)
    if int_rows:
        h1, h2 = _murmur3_u64_batch(
            np.asarray([keys[i] for i in int_rows], dtype=np.uint64), seed
        )
        positions[int_rows] = _derive_positions(h1, h2, count, modulus)
    if other_rows:
        digests = np.asarray(
            [murmur3_x64_128(_as_bytes(keys[i]), seed) for i in other_rows],
            dtype=np.uint64,
        )
        positions[other_rows] = _derive_positions(digests[:, 0], digests[:, 1], count, modulus)
    return positions


def hash_to_range(key: BytesLike, modulus: int, seed: int = 0) -> int:
    """Hash *key* uniformly into ``[0, modulus)``."""
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    return murmur3_64(key, seed) % modulus


def combine_seeds(*parts: int) -> int:
    """Deterministically combine several integer seeds into one 64-bit seed.

    Used to derive per-(repetition, table, node) seeds from a single master
    seed so that distributed shards agree on every hash function without
    communicating (Section 5.3 of the paper requires seed consistency).
    """
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc ^= (part & _MASK64) + 0x9E3779B97F4A7C15 + ((acc << 6) & _MASK64) + (acc >> 2)
        acc &= _MASK64
        acc = _fmix64(acc)
    return acc
