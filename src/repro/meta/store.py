"""The metadata sidecar store and its normalise-and-match filter contract.

Design constraints, in order:

1. **The engines stay metadata-free.**  Every index structure keeps
   answering pure term-membership queries over doc-id bitmaps; metadata
   filtering is a post-query intersection with a boolean mask over the same
   shared name table.  A filtered result is therefore bit-identical to
   filtering the unfiltered result locally — the property the planner tests
   and the HTTP round-trip smoke both gate on.

2. **Normalise-and-match.**  Field names and values are normalised
   identically on the write path and the query path (case-fold + whitespace
   strip, everything stringified), so ``Collection=" ENA "`` at build time
   matches ``collection=ena`` at query time.  A filter is a mapping
   ``field -> wanted`` where *wanted* is one value or a list (OR within the
   field); fields AND together.  A document with no record, or no value for
   a filtered field, never matches — filters are restrictive by
   construction, so adding one can only shrink a result set.

3. **Sidecar, not header.**  Metadata is stored in a JSON file next to the
   index artifact (``<index>.meta.json``) and *referenced* from the
   container header when written through ``save_index(...,
   metadata=store)``.  Old files without the header field (and old readers
   that ignore it) keep working unchanged — the extension is
   backward-compatible in both directions.  Sidecar byte layout::

       {"format_version": 1,
        "documents": {"<name>": {"<field>": "<raw value>", ...}, ...}}

   UTF-8 JSON, one object per document, raw (un-normalised) values so the
   file remains human-readable; normalisation happens on load and on match.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.base import QueryResult

PathLike = Union[str, Path]

#: Version stamp written into (and required from) every sidecar file.
METADATA_FORMAT_VERSION = 1

#: Suffix appended to the index artifact's path to name its sidecar.
SIDECAR_SUFFIX = ".meta.json"

FilterValue = Union[str, int, float, Sequence[Union[str, int, float]]]
Filters = Mapping[str, FilterValue]


def normalise_field(field: object) -> str:
    """Canonical form of a metadata field name: stripped, case-folded."""
    name = str(field).strip().casefold()
    if not name:
        raise ValueError("metadata field names must be non-empty")
    return name


def normalise_value(value: object) -> str:
    """Canonical form of a metadata value: stringified, stripped, case-folded.

    One rule for both sides of every comparison — the store applies it to
    recorded values on load and to wanted values at query time, which is
    what makes ``date="2021-03-01 "`` and ``DATE=2021-03-01`` the same
    question.
    """
    return str(value).strip().casefold()


def sidecar_path(index_path: PathLike) -> Path:
    """The sidecar file that belongs to the index artifact at *index_path*."""
    return Path(str(index_path) + SIDECAR_SUFFIX)


class MetadataStore:
    """Per-document metadata records with bitmap-level filtering.

    The store keeps the raw values (for display and round-tripping) and a
    normalised copy (for matching).  All mutation is name-keyed; the
    doc-id-level mask is computed against whatever name table the caller's
    results carry, so one store serves an index through folds, merges and
    delta overlays — any structure that preserves document names.
    """

    def __init__(self, records: Optional[Mapping[str, Mapping[str, object]]] = None) -> None:
        # name -> {raw field -> raw value}, insertion-ordered for stable JSON.
        self._records: Dict[str, Dict[str, str]] = {}
        # name -> {normalised field -> normalised value}
        self._normalised: Dict[str, Dict[str, str]] = {}
        if records:
            for name, fields in records.items():
                self.set(name, fields)

    def set(self, name: str, fields: Mapping[str, object]) -> None:
        """Record (or replace) the metadata of document *name*.

        Raises :class:`ValueError` for an empty name or empty field names;
        values are accepted as any stringifiable scalar.
        """
        if not name:
            raise ValueError("document name must be non-empty")
        raw: Dict[str, str] = {}
        normalised: Dict[str, str] = {}
        for field, value in fields.items():
            key = normalise_field(field)
            if key in normalised:
                raise ValueError(
                    f"document {name!r}: field {field!r} collides with another "
                    f"field after normalisation ({key!r})"
                )
            raw[str(field)] = str(value)
            normalised[key] = normalise_value(value)
        self._records[name] = raw
        self._normalised[name] = normalised

    def update(self, records: Mapping[str, Mapping[str, object]]) -> None:
        """Bulk :meth:`set` over a ``{name: {field: value}}`` mapping."""
        for name, fields in records.items():
            self.set(name, fields)

    def get(self, name: str) -> Optional[Dict[str, str]]:
        """The raw metadata record of *name*, or ``None`` when absent."""
        record = self._records.get(name)
        return dict(record) if record is not None else None

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    @property
    def document_names(self) -> List[str]:
        """Names with a metadata record, in insertion order."""
        return list(self._records)

    def fields(self) -> List[str]:
        """Every normalised field name appearing in any record, sorted."""
        seen = set()
        for record in self._normalised.values():
            seen.update(record)
        return sorted(seen)

    # -- filtering ----------------------------------------------------------------------

    @staticmethod
    def normalise_filters(filters: Filters) -> Dict[str, List[str]]:
        """Canonicalise a filter mapping: fields normalised, values listed.

        A scalar wanted value becomes a one-element list; a list stays a
        list (OR semantics within the field).  Raises :class:`ValueError`
        for empty filters, empty field names or empty value lists, so a
        malformed HTTP/CLI filter fails loudly instead of matching nothing.
        """
        if not filters:
            raise ValueError("filters must name at least one field")
        canonical: Dict[str, List[str]] = {}
        for field, wanted in filters.items():
            key = normalise_field(field)
            if isinstance(wanted, (str, bytes)) or not isinstance(wanted, Iterable):
                values = [wanted]
            else:
                values = list(wanted)
            if not values:
                raise ValueError(f"filter field {field!r} has an empty value list")
            canonical[key] = [normalise_value(value) for value in values]
        return canonical

    def matches(self, name: str, filters: Filters) -> bool:
        """Whether document *name* passes *filters* (normalise-and-match).

        Every filtered field must be present on the document and its
        normalised value must equal one of the wanted values.  Documents
        without a metadata record never match.
        """
        canonical = self.normalise_filters(filters)
        record = self._normalised.get(name)
        if record is None:
            return False
        return all(
            record.get(field) in wanted for field, wanted in canonical.items()
        )

    def filter_mask(self, name_table: Sequence[str], filters: Filters) -> np.ndarray:
        """Boolean mask over *name_table*: ``mask[i]`` iff document i matches.

        This is the bitmap-level form the planner intersects query results
        with; it is computed once per (name table, filters) pair and applied
        to every result of a batch.
        """
        canonical = self.normalise_filters(filters)
        mask = np.zeros(len(name_table), dtype=bool)
        for i, name in enumerate(name_table):
            record = self._normalised.get(name)
            if record is not None and all(
                record.get(field) in wanted for field, wanted in canonical.items()
            ):
                mask[i] = True
        return mask

    def apply(
        self,
        result: QueryResult,
        filters: Filters,
        *,
        mask: Optional[np.ndarray] = None,
        name_table: Optional[Sequence[str]] = None,
    ) -> QueryResult:
        """*result* restricted to documents passing *filters*.

        Bitmap-native when the result carries doc ids (the batch-engine
        form): the surviving ids are ``ids[mask[ids]]`` — one fancy-index,
        no name materialisation.  Name-level results (the eager baseline
        form) fall back to per-name matching.  ``filters_probed`` is
        preserved: filtering is bookkeeping, not probing.  A pre-computed
        *mask* (from :meth:`filter_mask`) short-circuits recomputation
        across a batch.
        """
        table = result.name_table if name_table is None else name_table
        if table is not None:
            if mask is None:
                mask = self.filter_mask(table, filters)
            ids = result.doc_ids
            return QueryResult(
                doc_ids=ids[mask[ids]],
                name_table=table,
                filters_probed=result.filters_probed,
            )
        kept = frozenset(
            name for name in result.documents if self.matches(name, filters)
        )
        return QueryResult(documents=kept, filters_probed=result.filters_probed)

    def apply_batch(
        self, results: Sequence[QueryResult], filters: Filters
    ) -> List[QueryResult]:
        """Filter a whole batch, computing each distinct name-table mask once."""
        masks: Dict[int, np.ndarray] = {}
        out: List[QueryResult] = []
        for result in results:
            table = result.name_table
            if table is None:
                out.append(self.apply(result, filters))
                continue
            key = id(table)
            if key not in masks:
                masks[key] = self.filter_mask(table, filters)
            out.append(self.apply(result, filters, mask=masks[key]))
        return out

    # -- persistence --------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready sidecar payload (raw values, versioned)."""
        return {
            "format_version": METADATA_FORMAT_VERSION,
            "documents": {name: dict(fields) for name, fields in self._records.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetadataStore":
        """Rebuild a store from :meth:`to_dict` output; validates the version."""
        version = payload.get("format_version")
        if version != METADATA_FORMAT_VERSION:
            raise ValueError(
                f"unsupported metadata sidecar version {version!r} "
                f"(this reader understands version {METADATA_FORMAT_VERSION})"
            )
        documents = payload.get("documents")
        if not isinstance(documents, Mapping):
            raise ValueError("metadata sidecar is missing the 'documents' mapping")
        return cls(documents)

    def save(self, path: PathLike) -> int:
        """Write the sidecar JSON to *path*; returns the bytes written."""
        data = json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"
        path = Path(path)
        path.write_text(data, encoding="utf-8")
        return len(data.encode("utf-8"))

    @classmethod
    def load(cls, path: PathLike) -> "MetadataStore":
        """Load a sidecar written by :meth:`save`.

        Raises :class:`ValueError` on malformed JSON or version mismatch and
        lets :class:`FileNotFoundError` propagate for missing files.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not a valid metadata sidecar: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{path} is not a valid metadata sidecar (not an object)")
        return cls.from_dict(payload)

    def save_for(self, index_path: PathLike) -> Path:
        """Write the sidecar next to the index artifact; returns its path."""
        target = sidecar_path(index_path)
        self.save(target)
        return target

    def __repr__(self) -> str:
        return f"MetadataStore(documents={len(self._records)}, fields={self.fields()})"


def load_sidecar_for(index_path: PathLike) -> Optional[MetadataStore]:
    """The metadata store of the index at *index_path*, or ``None``.

    Detection is by sidecar-file existence (``<index>.meta.json``), so
    indexes written before the header extension — and sidecars copied next
    to an old artifact by hand — are picked up identically.
    """
    target = sidecar_path(index_path)
    if not target.exists():
        return None
    return MetadataStore.load(target)
