"""Per-document metadata sidecar: build-time records, query-time filters.

The index structures answer *which documents contain this term*; production
callers almost always want *which documents of collection X, sampled after
date D, contain this term*.  This package keeps that second question out of
the bitmap engines: metadata lives in a sidecar store written next to the
index artifact at build time, and filtering is a post-query intersection of
the engine's doc-id bitmap with a metadata mask — the engines never learn
about accessions or dates.

See :mod:`repro.meta.store` for the normalise-and-match filter contract.
"""

from repro.meta.store import (
    METADATA_FORMAT_VERSION,
    MetadataStore,
    load_sidecar_for,
    normalise_field,
    normalise_value,
    sidecar_path,
)

__all__ = [
    "METADATA_FORMAT_VERSION",
    "MetadataStore",
    "load_sidecar_for",
    "normalise_field",
    "normalise_value",
    "sidecar_path",
]
