"""Bit arrays and Bloom-filter variants.

Everything in the RAMBO architecture — the BFUs, the COBS baseline's
bit-sliced signature matrix, the SBT family's tree nodes, and the fold-over
operation — is built on the same dense bit-array substrate implemented in
:mod:`repro.bloom.bitarray` (numpy ``uint64`` words, vectorised bitwise
algebra).

Three membership structures are provided:

* :class:`BloomFilter` — the classic structure used as the BFU.
* :class:`ScalableBloomFilter` — the adaptive-size alternative the paper cites
  for streaming inputs whose cardinality is unknown up front.
* :class:`CountingBloomFilter` — supports deletions; not used by RAMBO itself
  but included because several follow-up designs (and our ablation benches)
  need it.
"""

from repro.bloom.bitarray import BitArray, popcount_words, probe_words_batch
from repro.bloom.bloom_filter import BloomFilter, optimal_num_hashes, optimal_num_bits
from repro.bloom.scalable import ScalableBloomFilter
from repro.bloom.counting import CountingBloomFilter

__all__ = [
    "BitArray",
    "popcount_words",
    "probe_words_batch",
    "BloomFilter",
    "ScalableBloomFilter",
    "CountingBloomFilter",
    "optimal_num_hashes",
    "optimal_num_bits",
]
