"""The classical Bloom filter used as RAMBO's BFU (Bloom Filter of the Union).

The structure follows Section 2.1 of the paper: an ``m``-bit array, ``eta``
hash functions, no false negatives, false-positive rate approximately
``(1 - e^(-eta*n/m))^eta``.  Hash probes come from MurmurHash3 double hashing
(:func:`repro.hashing.murmur3.double_hashes`) so that every filter sharing a
seed and size sets the *same* positions for the same key — the property that
makes merging (union) and fold-over meaningful.
"""

from __future__ import annotations

import math
from itertools import islice
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.bloom.bitarray import BitArray, probe_words_batch
from repro.hashing.murmur3 import double_hashes, double_hashes_batch

Key = Union[str, bytes, int]

#: Keys per slice in the bulk membership probe; bounds the position-matrix
#: intermediates while keeping the conjunctive short-circuit responsive.
BULK_PROBE_CHUNK_KEYS = 2048


def optimal_num_bits(num_items: int, fp_rate: float) -> int:
    """Bits needed to hold *num_items* keys at the target false-positive rate.

    ``m = -n ln p / (ln 2)^2`` from the standard analysis (Section 2.1).
    """
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if not (0.0 < fp_rate < 1.0):
        raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
    return max(64, int(math.ceil(-num_items * math.log(fp_rate) / (math.log(2) ** 2))))


def optimal_num_hashes(num_bits: int, num_items: int) -> int:
    """Number of hash functions minimising the FP rate: ``eta = (m/n) ln 2``."""
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if num_bits <= 0:
        raise ValueError(f"num_bits must be positive, got {num_bits}")
    return max(1, round(num_bits / num_items * math.log(2)))


def _normalise_key(key: Key) -> bytes:
    """Keys may be strings, bytes(-like), or integers (2-bit encoded k-mers).

    Accepts exactly what the batched contract
    (:func:`repro.hashing.murmur3.normalise_batch_key`) accepts — including
    bytearray/memoryview and numpy integer scalars — so any key that can be
    inserted can also be looked up through the scalar path.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, (bytearray, memoryview)):
        return bytes(key)
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, (int, np.integer)):
        key = int(key)
        if key < 0:
            raise ValueError(f"integer keys must be non-negative, got {key}")
        return key.to_bytes(8, "little")
    raise TypeError(f"unsupported key type: {type(key)!r}")


class BloomFilter:
    """Fixed-size Bloom filter over string / bytes / integer keys.

    Parameters
    ----------
    num_bits:
        Size ``m`` of the underlying bit array.
    num_hashes:
        Number of probe positions ``eta`` per key (1--6 in the paper's setups).
    seed:
        Hash seed.  Filters that are meant to be merged (BFUs of the same
        RAMBO table, COBS rows of the same index, SBT nodes of the same tree)
        must share ``num_bits``, ``num_hashes`` and ``seed``.
    """

    __slots__ = ("num_bits", "num_hashes", "seed", "bits", "num_items")

    def __init__(self, num_bits: int, num_hashes: int = 3, seed: int = 0) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self.seed = int(seed)
        self.bits = BitArray(self.num_bits)
        self.num_items = 0

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float = 0.01, seed: int = 0) -> "BloomFilter":
        """Construct a filter sized for *capacity* keys at *fp_rate*."""
        num_bits = optimal_num_bits(capacity, fp_rate)
        num_hashes = optimal_num_hashes(num_bits, capacity)
        return cls(num_bits=num_bits, num_hashes=num_hashes, seed=seed)

    @classmethod
    def from_parts(
        cls,
        num_bits: int,
        num_hashes: int,
        seed: int,
        bits: BitArray,
        num_items: int = 0,
    ) -> "BloomFilter":
        """Assemble a filter around an existing payload without copying it.

        The single constructor behind deserialisation and the memory-mapped
        open path: *bits* may wrap an owned array or a (possibly read-only)
        ``np.memmap`` view, and is adopted as-is — no zero-fill, no copy.

        Raises :class:`ValueError` if *bits* does not have exactly
        ``num_bits`` addressable bits.
        """
        if bits.size != num_bits:
            raise ValueError(
                f"payload has {bits.size} bits, filter expects {num_bits}"
            )
        bf = cls.__new__(cls)
        bf.num_bits = int(num_bits)
        bf.num_hashes = int(num_hashes)
        bf.seed = int(seed)
        bf.bits = bits
        bf.num_items = int(num_items)
        return bf

    # -- core operations ---------------------------------------------------------

    def _positions(self, key: Key) -> List[int]:
        return double_hashes(_normalise_key(key), self.num_hashes, self.num_bits, self.seed)

    def _positions_matrix(self, keys: Union[Sequence[Key], np.ndarray]) -> np.ndarray:
        """``(n_keys, eta)`` probe matrix from one vectorised hash pass.

        Row ``i`` equals ``_positions(keys[i])`` exactly; a numpy integer
        array is digested whole with zero per-key Python work.  Key-type
        normalisation and validation live inside :func:`double_hashes_batch`.
        """
        return double_hashes_batch(keys, self.num_hashes, self.num_bits, self.seed)

    def add(self, key: Key) -> None:
        """Insert a key (idempotent in the bit array, counted per call).

        Thin scalar wrapper over :meth:`add_many`, kept so single-key
        streaming inserts share one write path with the bulk pipeline.
        """
        self.add_many((key,))

    def add_many(self, keys: Union[Iterable[Key], np.ndarray]) -> int:
        """Insert a batch of keys; returns the number of keys inserted.

        One vectorised hash pass produces the whole ``(n, eta)`` position
        matrix, and one word-OR scatter writes it into the bit array —
        bit-identical to calling :meth:`add` per key (OR is commutative), at
        a fraction of the per-key cost.  Numpy integer arrays (2-bit k-mer
        term codes) avoid Python-level key handling entirely.
        """
        if not isinstance(keys, (np.ndarray, list, tuple)):
            keys = list(keys)
        count = int(keys.size) if isinstance(keys, np.ndarray) else len(keys)
        if count == 0:
            return 0
        self.bits.set_many(self._positions_matrix(keys).ravel())
        self.num_items += count
        return count

    def update(self, keys: Union[Iterable[Key], np.ndarray]) -> None:
        """Insert many keys (one batched hash pass, one bulk bit-set)."""
        self.add_many(keys)

    def __contains__(self, key: Key) -> bool:
        return self.bits.all_set(self._positions(key))

    def contains(self, key: Key) -> bool:
        """Membership test (no false negatives, tunable false positives)."""
        return key in self

    def contains_many(self, keys: Union[Sequence[Key], np.ndarray]) -> np.ndarray:
        """Per-key membership verdicts as one boolean array.

        The single-filter instantiation of the shared
        :func:`probe_words_batch` kernel: every key's ``eta`` probes are
        evaluated with a handful of vectorised gathers.
        """
        positions = self._positions_matrix(keys)
        if positions.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        return probe_words_batch(self.bits.words[None, :], positions)[:, 0]

    def contains_all(self, keys: Union[Iterable[Key], np.ndarray]) -> bool:
        """True iff every key appears to be a member (short-circuits on miss).

        This is the ``Q ∈ BFU`` predicate of Algorithm 2: a sequence query is
        a conjunction over its k-mers, and the first FALSE is conclusive.
        Keys are probed through the batch kernel in bounded chunks, so a
        conjunction that dies early stops after one chunk instead of hashing
        the whole batch.
        """
        if isinstance(keys, np.ndarray):
            chunks: Iterable = (
                keys[start : start + BULK_PROBE_CHUNK_KEYS]
                for start in range(0, int(keys.size), BULK_PROBE_CHUNK_KEYS)
            )
        else:
            iterator = iter(keys)
            chunks = iter(lambda: list(islice(iterator, BULK_PROBE_CHUNK_KEYS)), [])
        for chunk in chunks:
            if not bool(self.contains_many(chunk).all()):
                return False
        return True

    # -- metrics -------------------------------------------------------------------

    def fill_ratio(self) -> float:
        """Fraction of set bits."""
        return self.bits.fill_ratio()

    def false_positive_rate(self) -> float:
        """Estimated FP rate from the observed fill ratio: ``fill^eta``."""
        return self.fill_ratio() ** self.num_hashes

    def expected_false_positive_rate(self, num_items: int | None = None) -> float:
        """Analytic FP rate ``(1 - e^(-eta*n/m))^eta`` for *num_items* keys."""
        n = self.num_items if num_items is None else num_items
        if n <= 0:
            return 0.0
        return (1.0 - math.exp(-self.num_hashes * n / self.num_bits)) ** self.num_hashes

    def size_in_bytes(self) -> int:
        """Payload size of the filter in bytes."""
        return self.bits.nbytes

    # -- algebra ---------------------------------------------------------------------

    def _check_mergeable(self, other: "BloomFilter") -> None:
        if not isinstance(other, BloomFilter):
            raise TypeError(f"expected BloomFilter, got {type(other)!r}")
        if (self.num_bits, self.num_hashes, self.seed) != (
            other.num_bits,
            other.num_hashes,
            other.seed,
        ):
            raise ValueError(
                "Bloom filters are incompatible for merging: "
                f"({self.num_bits}, {self.num_hashes}, {self.seed}) vs "
                f"({other.num_bits}, {other.num_hashes}, {other.seed})"
            )

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """New filter representing the set union (bitwise OR)."""
        self._check_mergeable(other)
        merged = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        merged.bits = self.bits | other.bits
        merged.num_items = self.num_items + other.num_items
        return merged

    def union_inplace(self, other: "BloomFilter") -> "BloomFilter":
        """OR *other* into this filter; this is the fold-over primitive."""
        self._check_mergeable(other)
        self.bits |= other.bits
        self.num_items += other.num_items
        return self

    def intersection(self, other: "BloomFilter") -> "BloomFilter":
        """Bitwise AND of two filters.

        Note this is an *approximation* of the intersection set (it may
        contain bits from either operand's false positives); SSBT and
        HowDeSBT use it for their "all/determined" vectors.
        """
        self._check_mergeable(other)
        merged = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        merged.bits = self.bits & other.bits
        merged.num_items = min(self.num_items, other.num_items)
        return merged

    def copy(self) -> "BloomFilter":
        """Deep copy."""
        duplicate = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        duplicate.bits = self.bits.copy()
        duplicate.num_items = self.num_items
        return duplicate

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.num_bits == other.num_bits
            and self.num_hashes == other.num_hashes
            and self.seed == other.seed
            and self.bits == other.bits
        )

    def __repr__(self) -> str:
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"items={self.num_items}, fill={self.fill_ratio():.4f})"
        )

    # -- serialisation ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise header + payload."""
        header = (
            self.num_bits.to_bytes(8, "little")
            + self.num_hashes.to_bytes(4, "little")
            + self.seed.to_bytes(8, "little", signed=True)
            + self.num_items.to_bytes(8, "little")
        )
        return header + self.bits.to_bytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`."""
        num_bits = int.from_bytes(payload[0:8], "little")
        num_hashes = int.from_bytes(payload[8:12], "little")
        seed = int.from_bytes(payload[12:20], "little", signed=True)
        num_items = int.from_bytes(payload[20:28], "little")
        bf = cls(num_bits, num_hashes, seed)
        bf.bits = BitArray.from_bytes(num_bits, payload[28:])
        bf.num_items = num_items
        return bf
