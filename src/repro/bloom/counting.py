"""Counting Bloom filter supporting deletions.

RAMBO proper only needs insert-only BFUs, but a counting variant is the
natural substrate for streaming settings where documents are retired (an
extension the paper's discussion hints at), and our ablation benches use it to
quantify the memory premium of supporting deletes.  Counters are small
unsigned integers; on saturation the counter sticks at its maximum so the
structure degrades to a plain Bloom filter rather than corrupting memberships.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.bloom.bloom_filter import _normalise_key
from repro.hashing.murmur3 import double_hashes

Key = Union[str, bytes, int]


class CountingBloomFilter:
    """Bloom filter with per-position counters instead of single bits.

    Parameters
    ----------
    num_counters:
        Number of counter cells (the analogue of ``num_bits``).
    num_hashes:
        Probe positions per key.
    counter_bits:
        Width of each counter: 8, 16 or 32.
    seed:
        Hash seed.
    """

    _DTYPES = {8: np.uint8, 16: np.uint16, 32: np.uint32}

    def __init__(
        self, num_counters: int, num_hashes: int = 3, counter_bits: int = 8, seed: int = 0
    ) -> None:
        if num_counters <= 0:
            raise ValueError(f"num_counters must be positive, got {num_counters}")
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        if counter_bits not in self._DTYPES:
            raise ValueError(f"counter_bits must be one of {sorted(self._DTYPES)}, got {counter_bits}")
        self.num_counters = int(num_counters)
        self.num_hashes = int(num_hashes)
        self.counter_bits = counter_bits
        self.seed = int(seed)
        self._max_count = (1 << counter_bits) - 1
        self.counters = np.zeros(self.num_counters, dtype=self._DTYPES[counter_bits])
        self.num_items = 0

    def _positions(self, key: Key) -> list:
        return double_hashes(_normalise_key(key), self.num_hashes, self.num_counters, self.seed)

    def add(self, key: Key) -> None:
        """Insert a key, incrementing its counters (saturating)."""
        for pos in self._positions(key):
            if self.counters[pos] < self._max_count:
                self.counters[pos] += 1
        self.num_items += 1

    def update(self, keys: Iterable[Key]) -> None:
        """Insert many keys."""
        for key in keys:
            self.add(key)

    def remove(self, key: Key) -> None:
        """Delete a previously-inserted key.

        Deleting a key that was never inserted may introduce false negatives
        for other keys (the classic counting-Bloom caveat); callers are
        expected to only delete what they inserted.  Counters stuck at the
        saturation value are left untouched to preserve the no-false-negative
        guarantee for remaining keys.
        """
        positions = self._positions(key)
        if not all(self.counters[pos] > 0 for pos in positions):
            raise KeyError(f"key {key!r} does not appear to be present")
        for pos in positions:
            if self.counters[pos] != self._max_count:
                self.counters[pos] -= 1
        self.num_items = max(0, self.num_items - 1)

    def __contains__(self, key: Key) -> bool:
        return all(self.counters[pos] > 0 for pos in self._positions(key))

    def contains(self, key: Key) -> bool:
        """Membership test."""
        return key in self

    def size_in_bytes(self) -> int:
        """Payload bytes of the counter array."""
        return int(self.counters.nbytes)

    def __repr__(self) -> str:
        return (
            f"CountingBloomFilter(num_counters={self.num_counters}, "
            f"num_hashes={self.num_hashes}, counter_bits={self.counter_bits}, "
            f"items={self.num_items})"
        )
