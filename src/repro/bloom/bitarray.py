"""Dense bit arrays backed by numpy ``uint64`` words.

The paper stresses that unions, intersections and fold-over are "fast bitwise
operations"; this class is the single place those operations live.  All index
structures in the library (RAMBO BFUs, COBS bit-sliced rows, SBT nodes, the
document-membership bitmaps used by Algorithm 2) share it.

Semantics follow the usual conventions: bits are addressed ``0..size-1``,
out-of-range access raises ``IndexError``, and binary operators require equal
sizes.  The underlying words are exposed read-only via :attr:`words` so the
experiment harness can account memory precisely.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

_WORD_BITS = 64

# Byte-wise popcount lookup for numpy builds without ``np.bitwise_count``.
_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across an array of ``uint64`` words.

    Unlike the ``np.unpackbits`` route this never materialises an 8x-sized
    expansion of the payload: it either uses the hardware popcount
    (``np.bitwise_count``, numpy >= 2.0) or a 256-entry byte lookup table.
    """
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(words).sum())
    # .view(uint8) needs a contiguous last axis; strided inputs are legal.
    words = np.ascontiguousarray(words)
    return int(_POPCOUNT_TABLE[words.view(np.uint8)].sum(dtype=np.int64))


def probe_words_batch(words, positions: np.ndarray) -> np.ndarray:
    """Batched multi-probe membership test over stacked bit-array payloads.

    Parameters
    ----------
    words:
        ``(num_rows, num_words)`` ``uint64`` matrix — one bit-array payload
        per row, all sharing the same size (e.g. every BFU of one RAMBO
        repetition, stacked).  Alternatively a tuple/list of such matrices
        with identical shapes: the planes are treated as the elementwise OR
        of their words.  This is how the streaming-ingest overlay probes
        ``base | delta`` without ever materialising the combined plane — the
        OR happens on the gathered words of each probe, one extra gather+OR
        per plane, and is exactly equivalent to probing the OR-merged index
        (Bloom insertion is a pure OR-scatter).
    positions:
        ``(num_queries, num_probes)`` integer matrix of bit positions, one
        row of probe positions per query key.

    Returns
    -------
    ``(num_queries, num_rows)`` boolean matrix whose ``[q, r]`` entry is True
    iff *every* probe position of query ``q`` is set in row ``r`` — i.e. the
    Bloom-filter membership verdict of key ``q`` against filter ``r``.  The
    whole test is a handful of vectorised gathers, the "fast bitwise
    operations" the paper's query-time argument rests on.
    """
    if isinstance(words, (tuple, list)):
        planes = [np.asarray(plane) for plane in words]
        if not planes:
            raise ValueError("words must contain at least one plane")
    else:
        planes = [np.asarray(words)]
    positions = np.asarray(positions)
    if positions.ndim != 2:
        raise ValueError(f"positions must be 2-D, got shape {positions.shape}")
    for plane in planes:
        if plane.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {plane.shape}")
        if plane.shape != planes[0].shape:
            raise ValueError(
                f"all word planes must share one shape, got {plane.shape} "
                f"vs {planes[0].shape}"
            )
    if positions.shape[1] == 0:
        # A query with no probe positions is vacuously a member everywhere.
        # (A zero-width payload with real probe positions is NOT vacuous —
        # the gather below raises IndexError for it, like any out-of-range
        # position.)
        return np.ones((positions.shape[0], planes[0].shape[0]), dtype=bool)
    if (positions < 0).any():
        # Negative fancy indices would silently wrap to the end of the
        # payload and return a bogus verdict.
        raise IndexError("probe positions must be non-negative")
    word_index = positions // _WORD_BITS                       # (n, eta)
    bit = (positions % _WORD_BITS).astype(np.uint64)           # (n, eta)
    # Reduce over the probe axis incrementally so the peak intermediate is
    # one (rows, n) gather per probe rather than a (rows, n, eta) cube.
    hits = np.ones((planes[0].shape[0], positions.shape[0]), dtype=bool)
    for j in range(positions.shape[1]):
        gathered = planes[0][:, word_index[:, j]]              # (rows, n)
        for extra in planes[1:]:
            gathered = gathered | extra[:, word_index[:, j]]
        hits &= ((gathered >> bit[None, :, j]) & np.uint64(1)).astype(bool)
    return hits.T                                              # (n, rows)


class BitArray:
    """Fixed-size mutable bit array with vectorised bitwise algebra.

    A BitArray may wrap a caller-provided ``uint64`` word array instead of
    owning a fresh one — this is how the memory-mapped on-disk format
    (:mod:`repro.io.diskformat`) serves index payloads zero-copy: the words
    are a read-only ``np.memmap`` row and every probe pages data straight
    from the file.  Mutating such a read-only view raises a clean
    :class:`ValueError` (see :meth:`writeable`); ``copy()`` always yields an
    owned, writable array.
    """

    __slots__ = ("_size", "_words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self._size = int(size)
        num_words = (self._size + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self._words = np.zeros(num_words, dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (num_words,):
                raise ValueError("words array has wrong dtype or shape")
            self._words = words

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "BitArray":
        """Create a bit array with the given positions set."""
        arr = cls(size)
        arr.set_many(indices)
        return arr

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitArray":
        """Create from a sequence of 0/1 values (index 0 first)."""
        arr = cls(len(bits))
        arr.set_many(i for i, b in enumerate(bits) if b)
        return arr

    def copy(self) -> "BitArray":
        """Deep copy."""
        return BitArray(self._size, self._words.copy())

    # -- basic accessors -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of addressable bits."""
        return self._size

    @property
    def words(self) -> np.ndarray:
        """Underlying ``uint64`` words (do not mutate)."""
        return self._words

    @property
    def nbytes(self) -> int:
        """Memory footprint of the payload in bytes."""
        return int(self._words.nbytes)

    @property
    def writeable(self) -> bool:
        """Whether the backing words may be mutated.

        False for arrays wrapping a read-only view — most notably the
        ``np.memmap`` payload of an index opened with ``open_mmap`` in
        read-only mode.  Every mutating method checks this first and raises
        :class:`ValueError` instead of numpy's opaque buffer error.
        """
        return bool(self._words.flags.writeable)

    def _require_writable(self) -> None:
        if not self._words.flags.writeable:
            raise ValueError(
                "cannot mutate a read-only BitArray (memory-mapped payload); "
                "copy() it, or reopen the index with mode='c' for copy-on-write"
            )

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not (0 <= index < self._size):
            raise IndexError(f"bit index {index} out of range for size {self._size}")
        return index

    def set(self, index: int) -> None:
        """Set bit *index* to 1."""
        self._require_writable()
        index = self._check_index(index)
        self._words[index // _WORD_BITS] |= np.uint64(1) << np.uint64(index % _WORD_BITS)

    def clear(self, index: int) -> None:
        """Set bit *index* to 0."""
        self._require_writable()
        index = self._check_index(index)
        self._words[index // _WORD_BITS] &= ~(np.uint64(1) << np.uint64(index % _WORD_BITS))

    def get(self, index: int) -> bool:
        """Return whether bit *index* is set."""
        index = self._check_index(index)
        word = self._words[index // _WORD_BITS]
        return bool((word >> np.uint64(index % _WORD_BITS)) & np.uint64(1))

    def _check_indices(self, indices: Union[Iterable[int], np.ndarray]) -> np.ndarray:
        """Validated ``int64`` index array (vectorised for numpy inputs).

        Numpy integer arrays — the probe-position matrices the batched hash
        kernel emits — are bounds-checked with two array comparisons instead
        of a per-element Python generator; any other iterable keeps the
        scalar semantics (including negative-index wrap) of
        :meth:`_check_index`.
        """
        if isinstance(indices, np.ndarray) and np.issubdtype(indices.dtype, np.integer):
            flat = indices.ravel()
            if flat.size == 0:
                return flat.astype(np.int64, copy=False)
            if np.issubdtype(indices.dtype, np.unsignedinteger):
                # Bounds-check in the unsigned dtype first: a blind int64
                # cast would wrap values >= 2**63 to negative and silently
                # hit the wrong bit instead of raising like the scalar path.
                bad = flat >= np.uint64(self._size)
                if bad.any():
                    offender = int(flat[int(np.argmax(bad))])
                    raise IndexError(
                        f"bit index {offender} out of range for size {self._size}"
                    )
                return flat.astype(np.int64, copy=False)
            idx = flat.astype(np.int64, copy=False)
            negative = idx < 0
            if negative.any():
                idx = np.where(negative, idx + self._size, idx)
            bad = (idx < 0) | (idx >= self._size)
            if bad.any():
                offender = int(flat[int(np.argmax(bad))])
                raise IndexError(
                    f"bit index {offender} out of range for size {self._size}"
                )
            return idx
        return np.fromiter((self._check_index(i) for i in indices), dtype=np.int64)

    def set_many(self, indices: Union[Iterable[int], np.ndarray]) -> None:
        """Set several bits in one word-OR scatter.

        Accepts any iterable of indices; a numpy integer array (of any shape
        — position matrices are flattened) is the fast path: one vectorised
        bounds check, then a single unbuffered ``bitwise_or`` scatter over
        the backing words.  This is the write-side twin of
        :func:`probe_words_batch` and the primitive every batched insert
        (``BloomFilter.add_many``, the RAMBO construction pipeline, the COBS
        column build) bottoms out in.
        """
        self._require_writable()
        idx = self._check_indices(indices)
        if idx.size == 0:
            return
        np.bitwise_or.at(
            self._words, idx // _WORD_BITS, np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64)
        )

    def get_many(self, indices: Union[Iterable[int], np.ndarray]) -> np.ndarray:
        """Boolean array of the bits at *indices* (order preserved)."""
        idx = self._check_indices(indices)
        if idx.size == 0:
            return np.zeros(0, dtype=bool)
        words = self._words[idx // _WORD_BITS]
        return ((words >> (idx % _WORD_BITS).astype(np.uint64)) & np.uint64(1)).astype(bool)

    def all_set(self, indices: Iterable[int]) -> bool:
        """True iff every listed bit is set (the Bloom-filter membership test)."""
        return bool(self.get_many(indices).all())

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __setitem__(self, index: int, value: int) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[bool]:
        for i in range(self._size):
            yield self.get(i)

    # -- population metrics -----------------------------------------------------

    def count(self) -> int:
        """Number of set bits (word-level popcount, no 8x bit expansion)."""
        return popcount_words(self._words)

    def fill_ratio(self) -> float:
        """Fraction of set bits; the load factor driving the FP rate."""
        return self.count() / self._size

    def any(self) -> bool:
        """True if at least one bit is set."""
        return bool(self._words.any())

    def to_indices(self) -> np.ndarray:
        """Sorted array of the positions of set bits."""
        bits = np.unpackbits(self._words.view(np.uint8), bitorder="little")[: self._size]
        return np.flatnonzero(bits)

    def to_bits(self) -> np.ndarray:
        """Dense 0/1 array of length :attr:`size`."""
        return np.unpackbits(self._words.view(np.uint8), bitorder="little")[: self._size]

    # -- algebra -----------------------------------------------------------------

    def _check_compatible(self, other: "BitArray") -> None:
        if not isinstance(other, BitArray):
            raise TypeError(f"expected BitArray, got {type(other)!r}")
        if other._size != self._size:
            raise ValueError(f"size mismatch: {self._size} vs {other._size}")

    def __or__(self, other: "BitArray") -> "BitArray":
        self._check_compatible(other)
        return BitArray(self._size, self._words | other._words)

    def __and__(self, other: "BitArray") -> "BitArray":
        self._check_compatible(other)
        return BitArray(self._size, self._words & other._words)

    def __xor__(self, other: "BitArray") -> "BitArray":
        self._check_compatible(other)
        return BitArray(self._size, self._words ^ other._words)

    def __invert__(self) -> "BitArray":
        inverted = BitArray(self._size, ~self._words)
        inverted._mask_tail()
        return inverted

    def __ior__(self, other: "BitArray") -> "BitArray":
        self._require_writable()
        self._check_compatible(other)
        self._words |= other._words
        return self

    def __iand__(self, other: "BitArray") -> "BitArray":
        self._require_writable()
        self._check_compatible(other)
        self._words &= other._words
        return self

    def __ixor__(self, other: "BitArray") -> "BitArray":
        self._require_writable()
        self._check_compatible(other)
        self._words ^= other._words
        return self

    def _mask_tail(self) -> None:
        """Zero the padding bits beyond :attr:`size` in the last word."""
        tail_bits = self._size % _WORD_BITS
        if tail_bits:
            mask = (np.uint64(1) << np.uint64(tail_bits)) - np.uint64(1)
            self._words[-1] &= mask

    def union_inplace(self, other: "BitArray") -> "BitArray":
        """Alias of ``|=`` used by fold-over for readability."""
        self.__ior__(other)
        return self

    def is_subset_of(self, other: "BitArray") -> bool:
        """True iff every set bit of ``self`` is also set in *other*."""
        self._check_compatible(other)
        return bool(np.array_equal(self._words & other._words, self._words))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitArray):
            return NotImplemented
        return self._size == other._size and bool(np.array_equal(self._words, other._words))

    def __hash__(self) -> int:  # BitArrays are mutable; forbid hashing.
        raise TypeError("BitArray is unhashable")

    def __repr__(self) -> str:
        return f"BitArray(size={self._size}, set={self.count()})"

    # -- serialisation -------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to little-endian word bytes (size must be stored separately)."""
        return self._words.tobytes()

    @classmethod
    def from_bytes(cls, size: int, payload: bytes) -> "BitArray":
        """Inverse of :meth:`to_bytes`."""
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        return cls(size, words)
