"""Scalable Bloom filter (Almeida et al., 2007).

Section 3.2 of the RAMBO paper notes that a BFU's size "can be predefined or a
scalable Bloom Filter can be used for adaptive size".  This module provides
that option: a chain of plain Bloom filters whose capacities grow
geometrically and whose per-stage false-positive rates shrink geometrically so
the compound FP rate stays below the configured bound regardless of how many
items are streamed in.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Union

from repro.bloom.bloom_filter import BloomFilter

Key = Union[str, bytes, int]


class ScalableBloomFilter:
    """Bloom filter that grows to accommodate an unknown number of items.

    Parameters
    ----------
    initial_capacity:
        Capacity of the first stage.
    fp_rate:
        Target compound false-positive bound across all stages.
    growth_factor:
        Capacity multiplier between consecutive stages (2 and 4 are typical).
    tightening_ratio:
        Each stage ``i`` gets FP budget ``fp_rate * tightening_ratio**i`` so
        the geometric series of budgets converges below ``fp_rate / (1 - r)``.
    seed:
        Hash seed shared by all stages.
    """

    def __init__(
        self,
        initial_capacity: int = 1024,
        fp_rate: float = 0.01,
        growth_factor: int = 2,
        tightening_ratio: float = 0.5,
        seed: int = 0,
    ) -> None:
        if initial_capacity <= 0:
            raise ValueError(f"initial_capacity must be positive, got {initial_capacity}")
        if not (0.0 < fp_rate < 1.0):
            raise ValueError(f"fp_rate must be in (0, 1), got {fp_rate}")
        if growth_factor < 2:
            raise ValueError(f"growth_factor must be >= 2, got {growth_factor}")
        if not (0.0 < tightening_ratio < 1.0):
            raise ValueError(f"tightening_ratio must be in (0, 1), got {tightening_ratio}")
        self.initial_capacity = initial_capacity
        self.fp_rate = fp_rate
        self.growth_factor = growth_factor
        self.tightening_ratio = tightening_ratio
        self.seed = seed
        self._stages: List[BloomFilter] = []
        self._stage_capacities: List[int] = []
        self._add_stage()

    # -- stage management -----------------------------------------------------------

    def _add_stage(self) -> None:
        index = len(self._stages)
        capacity = self.initial_capacity * (self.growth_factor**index)
        stage_fp = self.fp_rate * (1 - self.tightening_ratio) * (self.tightening_ratio**index)
        stage = BloomFilter.for_capacity(capacity, stage_fp, seed=self.seed)
        self._stages.append(stage)
        self._stage_capacities.append(capacity)

    @property
    def stages(self) -> List[BloomFilter]:
        """The underlying filter chain (read-only use)."""
        return list(self._stages)

    @property
    def num_items(self) -> int:
        """Total number of inserted keys."""
        return sum(stage.num_items for stage in self._stages)

    # -- operations --------------------------------------------------------------------

    def add(self, key: Key) -> None:
        """Insert a key, growing the chain if the active stage is full."""
        active = self._stages[-1]
        if active.num_items >= self._stage_capacities[-1]:
            self._add_stage()
            active = self._stages[-1]
        active.add(key)

    def update(self, keys: Iterable[Key]) -> None:
        """Insert many keys."""
        for key in keys:
            self.add(key)

    def __contains__(self, key: Key) -> bool:
        return any(key in stage for stage in self._stages)

    def contains(self, key: Key) -> bool:
        """Membership test across all stages (no false negatives)."""
        return key in self

    # -- metrics -----------------------------------------------------------------------

    def size_in_bytes(self) -> int:
        """Total payload bytes across all stages."""
        return sum(stage.size_in_bytes() for stage in self._stages)

    def expected_false_positive_rate(self) -> float:
        """Compound FP rate: 1 - prod(1 - p_i) over the stages."""
        acc = 1.0
        for stage in self._stages:
            acc *= 1.0 - stage.expected_false_positive_rate()
        return 1.0 - acc

    def __repr__(self) -> str:
        return (
            f"ScalableBloomFilter(stages={len(self._stages)}, items={self.num_items}, "
            f"target_fp={self.fp_rate})"
        )
