"""The ingest engine: WAL-durable appends, recovery, background compaction.

The append/compact/recover protocol, end to end (every step crash-safe):

**Append** (:meth:`IngestEngine.append`) — under the ingest lock:

1. validate the batch (duplicate names, bad term keys) *before* touching
   any state;
2. frame + fsync the batch into the current WAL segment — this is the
   durability point; only now may the caller be acknowledged;
3. absorb the batch into the in-memory delta via the stock
   ``Rambo.add_documents`` bulk path;
4. publish a fresh :class:`~repro.ingest.overlay.DeltaOverlayIndex` through
   the service's :class:`~repro.serve.snapshot.SnapshotManager` — queries
   never block on ingest (the lock covers writers only), and in-flight
   query batches drain against the overlay generation they leased.

**Compact** (:meth:`IngestEngine.compact`) — fold the delta into a new
``RAMBO2`` snapshot without ever serving an inconsistent state:

1. ``merge_indexes((base, delta))`` — a raw bit-plane OR plus re-based
   bookkeeping, bit-identical to a from-scratch build;
2. write the merged snapshot to ``snapshot-<gen>.rambo2`` via a temp file +
   ``os.replace`` + directory fsync (the file is complete or absent);
3. create the empty ``wal-<gen>.log`` segment (header fsynced);
4. atomically replace ``MANIFEST.json`` naming the new generation — **the
   commit point**: a crash before this recovers the old generation plus its
   intact WAL; a crash after recovers the new one;
5. rotate the new mmap-opened snapshot in as the serving base (in-flight
   overlay queries drain on their old snapshot) and delete the previous
   generation's WAL and snapshot files.

**Recover** (construction) — read the manifest (or adopt generation 0 over
the service's opened index), rotate to the manifest's snapshot if needed,
replay the WAL segment tolerating a torn tail (truncated durably), rebuild
the delta from the replayed documents, and republish the overlay.  Replay
skips documents already present in the base, so the protocol is idempotent
across the one crash window where a batch is durable but unacknowledged.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.core.parallel import merge_indexes
from repro.core.rambo import Rambo
from repro.core.serialization import open_index, save_index
from repro.ingest.overlay import DeltaOverlayIndex
from repro.io.walformat import (
    SegmentedWalWriter,
    _fsync_directory,
    replay_wal_generation,
    truncate_torn_generation,
    validate_document,
)
from repro.kmers.extraction import KmerDocument

PathLike = Union[str, Path]

MANIFEST_NAME = "MANIFEST.json"

#: Default delta size (documents) at which the background compactor fires.
DEFAULT_AUTO_COMPACT_DOCS = 1024

#: Default WAL segment roll size (bytes); override with REPRO_WAL_SEGMENT_BYTES.
DEFAULT_WAL_SEGMENT_BYTES = 64 * 1024 * 1024


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from exc


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be a number, got {raw!r}") from exc


class ReplicationLagError(RuntimeError):
    """A semi-synchronous append was durable locally but the configured
    number of standbys did not acknowledge it within the ack timeout.

    The write IS in the primary's WAL — on a retry the recovery dedup (by
    document name) makes it a no-op — but the caller must treat its fate
    as unknown until a node holding it answers.  Surfaced over HTTP as a
    503 so :class:`~repro.serve.client.FailoverClient` retries it.
    """


@dataclass(frozen=True)
class AppendResult:
    """Acknowledgement of one durable append batch."""

    appended: int
    snapshot_id: int
    delta_documents: int
    wal_bytes: int


class IngestEngine:
    """Durable streaming writes into a :class:`~repro.serve.service.QueryService`.

    Parameters
    ----------
    service:
        The serving facade whose snapshot pointer this engine drives.  The
        engine recovers against the service's currently served index (or
        the newer snapshot its manifest names).
    wal_dir:
        Directory holding the WAL segments, compacted snapshots and the
        manifest.  Created if absent.
    auto_compact_docs:
        Delta size (documents) at which the background compactor folds the
        delta into a new snapshot; ``0`` disables the background thread
        (compaction stays available via :meth:`compact`).
    fsync:
        Disable only in tests that measure the non-durability ceiling;
        production appends must fsync before acknowledging.
    segment_bytes:
        Roll the WAL to a fresh segment once the current one reaches this
        size (``0`` = one segment per generation).  Defaults to
        ``REPRO_WAL_SEGMENT_BYTES`` (64 MiB).
    group_commit_ms:
        Commit window for group-commit: concurrent appenders arriving
        within the window share one fsync and are acknowledged together
        after it returns.  ``0`` (the default, also via
        ``REPRO_GROUP_COMMIT_MS``) keeps the one-fsync-per-batch path.
    replica_ack:
        Semi-synchronous replication: acknowledge an append only once this
        many standbys have durably applied it (``0`` = asynchronous).  A
        standby whose ack lease expires stops counting toward the quorum,
        so a dead standby degrades the pair to async instead of wedging
        every append.
    replica_ack_timeout_s:
        How long a semi-sync append waits for the standby quorum before
        raising :class:`ReplicationLagError`.
    """

    #: Replication role — :class:`~repro.replicate.replica.ReplicaEngine`
    #: reports ``"replica"``; the HTTP layer rejects writes on replicas.
    role = "primary"

    def __init__(
        self,
        service,
        wal_dir: PathLike,
        *,
        auto_compact_docs: int = 0,
        fsync: bool = True,
        segment_bytes: Optional[int] = None,
        group_commit_ms: Optional[float] = None,
        replica_ack: int = 0,
        replica_ack_timeout_s: float = 30.0,
    ) -> None:
        self.service = service
        self.wal_dir = Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._fsync = fsync
        self._closed = False
        if segment_bytes is None:
            segment_bytes = _env_int(
                "REPRO_WAL_SEGMENT_BYTES", DEFAULT_WAL_SEGMENT_BYTES
            )
        if group_commit_ms is None:
            group_commit_ms = _env_float("REPRO_GROUP_COMMIT_MS", 0.0)
        self.segment_bytes = int(segment_bytes)
        self.group_commit_ms = float(group_commit_ms)
        self._gc_cond = threading.Condition(threading.Lock())
        self._gc_leader_active = False
        # Durable watermark as (generation, committed_records): compaction
        # bumps the generation, which lexicographically covers every record
        # of older generations (they are durable via the snapshot commit
        # point), so waiters never compare record counts across generations.
        self._gc_committed = (0, 0)
        self._gc_error: Optional[str] = None
        self.append_batches = 0
        self.appended_documents = 0
        self.compactions = 0
        self.documents_compacted = 0
        self.last_compaction_seconds = 0.0
        self.replayed_documents = 0
        self.replay_skipped = 0
        self.torn_bytes_truncated = 0
        self._recover()
        # Imported lazily: repro.replicate imports this module for promote().
        from repro.replicate.log import ReplicationLog

        self.replication = ReplicationLog(
            self,
            replica_ack=replica_ack,
            ack_timeout_s=replica_ack_timeout_s,
        )
        self.compactor: Optional[BackgroundCompactor] = (
            BackgroundCompactor(self, auto_compact_docs) if auto_compact_docs > 0 else None
        )

    # -- naming ------------------------------------------------------------------------

    def _wal_name(self, generation: int) -> str:
        return f"wal-{generation:06d}.log"

    def _snapshot_name(self, generation: int) -> str:
        return f"snapshot-{generation:06d}.rambo2"

    @property
    def manifest_path(self) -> Path:
        return self.wal_dir / MANIFEST_NAME

    # -- manifest (the compaction commit point) ----------------------------------------

    def _read_manifest(self) -> Optional[Dict]:
        if not self.manifest_path.exists():
            return None
        manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        if manifest.get("version") != 1:
            raise ValueError(
                f"{self.manifest_path} has unsupported manifest version "
                f"{manifest.get('version')!r}"
            )
        return manifest

    def _write_manifest(
        self, generation: int, snapshot: Optional[str], wal: str
    ) -> None:
        """Atomically replace the manifest (temp file + rename + dir fsync)."""
        payload = {
            "version": 1,
            "generation": generation,
            "snapshot": snapshot,
            "wal": wal,
            "config": self._base.config.to_dict(),
        }
        tmp = self.manifest_path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            if self._fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)
        if self._fsync:
            _fsync_directory(self.wal_dir)

    # -- recovery ----------------------------------------------------------------------

    def _recover(self) -> None:
        active = self.service.snapshots.active
        base = active.index
        base_path = active.path
        manifest = self._read_manifest()
        if manifest is not None:
            self.generation = int(manifest["generation"])
            snapshot_name = manifest.get("snapshot")
            if snapshot_name:
                snapshot_path = self.wal_dir / snapshot_name
                if base_path != str(snapshot_path):
                    # The manifest names a newer compacted generation than
                    # the index the server was started with: serve that one.
                    rotated = self.service.rotate(str(snapshot_path))
                    base, base_path = rotated.index, rotated.path
            wal_name = manifest["wal"]
        else:
            self.generation = 0
            wal_name = self._wal_name(0)
        self._base = base
        self._base_path = base_path
        self._delta = Rambo(base.config)
        replay = replay_wal_generation(
            self.wal_dir, self.generation, expected_config=base.config
        )
        segments = None
        if replay is not None:
            self.torn_bytes_truncated = truncate_torn_generation(replay)
            segments = replay.segments
            # Idempotence across the durable-but-unacknowledged crash
            # window: a record whose documents already made it into the
            # base (compaction raced the crash) replays as a no-op, and a
            # name duplicated inside the segment itself (a client retrying
            # an unacknowledged batch) keeps its first record only —
            # recovery must never turn duplicate data into a startup
            # failure.
            fresh: List[KmerDocument] = []
            replayed_names = set()
            for doc in replay.documents:
                if (
                    doc.name in base._doc_ids  # noqa: SLF001
                    or doc.name in replayed_names
                ):
                    continue
                replayed_names.add(doc.name)
                fresh.append(doc)
            self.replay_skipped = len(replay.documents) - len(fresh)
            self.replayed_documents = len(fresh)
            if fresh:
                self._delta.add_documents(fresh)
        self._wal = SegmentedWalWriter(
            self.wal_dir,
            base.config,
            self.generation,
            segment_bytes=self.segment_bytes,
            fsync=self._fsync,
            segments=segments,
        )
        if manifest is None:
            self._write_manifest(self.generation, None, wal_name)
        self._prune_stale_files()
        if self._delta.num_documents:
            self._publish_overlay()

    def _prune_stale_files(self) -> None:
        """Drop segment/snapshot files of other generations (crash debris).

        Only files this engine's naming scheme produced are candidates; the
        operator-supplied initial index lives outside ``wal_dir`` and is
        never touched.  All rolled segments of the *current* generation are
        kept — they are the replication catch-up source until the next
        compaction retires the whole generation at once.
        """
        keep_prefix = f"wal-{self.generation:06d}"
        keep = {
            self._snapshot_name(self.generation),
            MANIFEST_NAME,
        }
        for path in self.wal_dir.iterdir():
            if path.name in keep or (
                path.name.startswith(keep_prefix) and path.suffix in (".log", ".seg")
            ):
                continue
            if (
                (path.name.startswith("wal-") and path.suffix in (".log", ".seg"))
                or (path.name.startswith("snapshot-") and path.suffix == ".rambo2")
                or path.suffix == ".tmp"
            ):
                path.unlink(missing_ok=True)

    # -- the write path ----------------------------------------------------------------

    def _publish_overlay(self):
        """Swap a fresh overlay (or the bare base) into the serving pointer."""
        if self._delta.num_documents:
            index: Rambo = DeltaOverlayIndex(self._base, self._delta)
        else:
            index = self._base
        return self.service.swap(index, self._base_path)

    def append(self, documents: Iterable[KmerDocument]) -> AppendResult:
        """Durably append *documents*; acknowledged only after the WAL fsync.

        Raises :class:`ValueError` (duplicate name, invalid term key, or a
        document the WAL cannot frame — oversized name, unsupported term
        type) before any byte is written — a rejected batch leaves WAL,
        delta and the served snapshot untouched.  Concurrent appends serialise on the
        ingest lock; queries are unaffected (they lease snapshots).

        With ``group_commit_ms > 0`` the WAL write is buffered and the
        batch joins the open commit group: one appender becomes the
        leader, sleeps out the window, fsyncs every buffered batch with a
        single call, publishes one overlay covering them all, and wakes
        the group.  Nothing is acknowledged — and nothing newly buffered
        is served — before that shared fsync returns.

        With ``replica_ack > 0`` the acknowledgement additionally waits
        for that many standbys to durably apply the batch; a timeout
        raises :class:`ReplicationLagError` (the write is locally durable
        and a retry dedupes by name).
        """
        docs = list(documents)
        if not docs:
            with self._lock:
                return AppendResult(
                    0,
                    self.service.snapshots.active.snapshot_id,
                    self._delta.num_documents,
                    self._wal.size_bytes,
                )
        group = self.group_commit_ms > 0
        with self._lock:
            if self._closed:
                raise ValueError("ingest engine is closed")
            batch_names = set()
            for doc in docs:
                if (
                    doc.name in self._base._doc_ids  # noqa: SLF001
                    or doc.name in self._delta._doc_ids  # noqa: SLF001
                    or doc.name in batch_names
                ):
                    raise ValueError(f"document {doc.name!r} already indexed")
                batch_names.add(doc.name)
                validate_document(doc)  # WAL-encodable (name length, term types)
                if len(doc):
                    doc.validated_hash_keys()
            generation = self.generation
            wal_bytes = self._wal.append(docs, sync=not group)
            self._delta.add_documents(docs)
            self.append_batches += 1
            self.appended_documents += len(docs)
            if group:
                # Buffered, not yet durable: the records of this batch end
                # at committed + pending.  The group leader's sync commits
                # them; only then may this batch be acknowledged or served.
                target_records = self._wal.total_records
            else:
                target_records = self._wal.committed_records
                snapshot = self._publish_overlay()
                result = AppendResult(
                    len(docs),
                    snapshot.snapshot_id,
                    self._delta.num_documents,
                    wal_bytes,
                )
        if group:
            self._group_commit((generation, target_records))
            with self._lock:
                result = AppendResult(
                    len(docs),
                    self.service.snapshots.active.snapshot_id,
                    self._delta.num_documents,
                    self._wal.size_bytes,
                )
        # Outside the ingest lock: the standby's catch-up reads take the
        # same lock, so a semi-sync wait inside it would deadlock the pair.
        self.replication.notify()
        if self.replication.replica_ack > 0:
            self.replication.wait_replicated(generation, target_records)
        if self.compactor is not None:
            self.compactor.maybe_trigger()
        return result

    def _group_commit(self, target) -> None:
        """Block until the durable watermark covers *target* ``(gen, records)``.

        First appender to arrive while no leader is active becomes the
        leader: it sleeps out the commit window (letting more appends
        buffer), then — under the ingest lock — issues the one shared
        fsync and publishes one overlay covering everything it committed.
        Everyone else waits on the committed watermark.  A compaction that
        races the window also advances the watermark (its snapshot commit
        point makes every buffered record of the old generation durable).
        """
        while True:
            with self._gc_cond:
                while True:
                    if self._gc_error is not None and self._gc_committed < target:
                        raise ValueError(
                            f"group commit failed; WAL poisoned: {self._gc_error}"
                        )
                    if self._gc_committed >= target:
                        return
                    if not self._gc_leader_active:
                        self._gc_leader_active = True
                        break
                    self._gc_cond.wait()
            try:
                time.sleep(self.group_commit_ms / 1000.0)
                with self._lock:
                    self._wal.sync()
                    self._publish_overlay()
                    committed = (self.generation, self._wal.committed_records)
                with self._gc_cond:
                    self._gc_committed = max(self._gc_committed, committed)
                    self._gc_leader_active = False
                    self._gc_cond.notify_all()
            except Exception as exc:
                with self._gc_cond:
                    self._gc_error = repr(exc)
                    self._gc_leader_active = False
                    self._gc_cond.notify_all()
                raise
            # This leader's own batch was buffered before its sync, so the
            # watermark now covers it and the loop exits on the next pass.

    @property
    def delta_documents(self) -> int:
        """Documents currently held by the delta (0 right after compaction)."""
        return self._delta.num_documents

    # -- compaction --------------------------------------------------------------------

    def compact(self) -> Optional[Dict]:
        """Fold the delta into a new snapshot generation; returns its stats.

        No-op (returns ``None``) when the delta is empty.  Queries stay
        answerable throughout: the serving pointer flips once, atomically,
        from the old overlay to the new mmap-backed snapshot, and batches
        in flight drain on whichever generation they leased.  Appends block
        for the duration (they share the ingest lock) — durability first.
        """
        with self._lock:
            if self._closed or not self._delta.num_documents:
                return None
            started = time.perf_counter()
            # Drain any open group-commit window first: buffered records are
            # already in the delta about to be folded, and sealing the old
            # generation's WAL with unsynced bytes would leave replay and
            # the fold disagreeing about what the generation holds.
            self._wal.sync()
            generation = self.generation + 1
            merged = merge_indexes((self._base, self._delta))
            snapshot_name = self._snapshot_name(generation)
            snapshot_path = self.wal_dir / snapshot_name
            tmp = snapshot_path.with_suffix(".tmp")
            save_index(merged, tmp, format="mmap")
            if self._fsync:
                with open(tmp, "rb") as handle:
                    os.fsync(handle.fileno())
            os.replace(tmp, snapshot_path)
            if self._fsync:
                _fsync_directory(self.wal_dir)
            wal_name = self._wal_name(generation)
            new_wal = SegmentedWalWriter(
                self.wal_dir,
                self._base.config,
                generation,
                segment_bytes=self.segment_bytes,
                fsync=self._fsync,
            )
            # The commit point: after this rename the new generation is the
            # recovered state; before it, the old WAL still replays cleanly.
            self._write_manifest(generation, snapshot_name, wal_name)
            new_base = open_index(snapshot_path)
            snapshot = self.service.swap(new_base, str(snapshot_path))
            documents_folded = self._delta.num_documents
            old_wal = self._wal
            self.generation = generation
            self._base = new_base
            self._base_path = str(snapshot_path)
            self._delta = Rambo(new_base.config)
            self._wal = new_wal
            old_wal.close()
            self._prune_stale_files()
            self.compactions += 1
            self.documents_compacted += documents_folded
            self.last_compaction_seconds = time.perf_counter() - started
            result = {
                "generation": generation,
                "snapshot_id": snapshot.snapshot_id,
                "documents_folded": documents_folded,
                "base_documents": new_base.num_documents,
                "wall_seconds": self.last_compaction_seconds,
                "snapshot_path": str(snapshot_path),
            }
        # The snapshot commit point made every old-generation record durable:
        # release any group waiting on them, then point standbys at the new
        # generation (their next stream read gets a generation-changed 409).
        with self._gc_cond:
            self._gc_committed = max(self._gc_committed, (generation, 0))
            self._gc_cond.notify_all()
        self.replication.notify()
        return result

    # -- observability / lifecycle -----------------------------------------------------

    def stats(self) -> Dict:
        """JSON-ready WAL/delta/compaction counters (the ``/stats`` block)."""
        with self._lock:
            record = {
                "generation": self.generation,
                "wal": {
                    "path": str(self._wal.path),
                    "bytes": self._wal.size_bytes,
                    "records_appended": self._wal.records_appended,
                    "replayed_documents": self.replayed_documents,
                    "replay_skipped": self.replay_skipped,
                    "torn_bytes_truncated": self.torn_bytes_truncated,
                    "segments": self._wal.segment_count,
                    "segment_bytes": self.segment_bytes,
                    "records_total": self._wal.committed_records,
                    "syncs": self._wal.sync_count,
                    "group_commit_ms": self.group_commit_ms,
                },
                "delta": {
                    "documents": self._delta.num_documents,
                    "size_bytes": self._delta.size_in_bytes(),
                },
                "appends": {
                    "batches": self.append_batches,
                    "documents": self.appended_documents,
                },
                "compaction": {
                    "count": self.compactions,
                    "documents_compacted": self.documents_compacted,
                    "last_wall_seconds": self.last_compaction_seconds,
                    "auto_after_docs": (
                        self.compactor.threshold_docs if self.compactor else 0
                    ),
                    "background_errors": (
                        self.compactor.last_error if self.compactor else None
                    ),
                },
            }
        record["replication"] = self.replication.stats()
        return record

    def healthz(self) -> Dict:
        """Readiness detail for ``GET /healthz``.

        A constructed primary has already finished recovery (construction
        *is* recovery), so it is always ready; the replica override reports
        ready only once its replay has caught up to the primary.
        """
        return {
            "role": self.role,
            "ready": True,
            "wal_attached": True,
            "generation": self.generation,
            "replication_lag": 0,
        }

    def close(self) -> None:
        """Stop the background compactor and close the WAL segment."""
        if self._closed:
            return
        if self.compactor is not None:
            self.compactor.stop()
        self.replication.close()
        with self._lock:
            self._closed = True
            self._wal.close()

    def __enter__(self) -> "IngestEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BackgroundCompactor:
    """A daemon thread folding the delta once it crosses a document threshold.

    Deliberately event-driven rather than polling: :meth:`maybe_trigger`
    (called by the engine after every acknowledged append) sets the event
    when the delta has outgrown ``threshold_docs``, and the thread runs one
    :meth:`IngestEngine.compact` per wake-up.  A compaction failure is
    recorded in ``last_error`` and surfaced through ``/stats`` instead of
    killing the thread — the WAL keeps every acknowledged write safe either
    way.
    """

    def __init__(self, engine: IngestEngine, threshold_docs: int) -> None:
        if threshold_docs <= 0:
            raise ValueError(f"threshold_docs must be positive, got {threshold_docs}")
        self.engine = engine
        self.threshold_docs = threshold_docs
        self.last_error: Optional[str] = None
        self._wakeup = threading.Event()
        self._stopping = False
        self._thread = threading.Thread(
            target=self._run, name="repro-ingest-compactor", daemon=True
        )
        self._thread.start()

    def maybe_trigger(self) -> None:
        if self.engine.delta_documents >= self.threshold_docs:
            self._wakeup.set()

    def trigger(self) -> None:
        """Request a compaction regardless of the threshold."""
        self._wakeup.set()

    def _run(self) -> None:
        while True:
            self._wakeup.wait()
            if self._stopping:
                return
            self._wakeup.clear()
            try:
                self.engine.compact()
            except Exception as exc:  # noqa: BLE001 - surfaced via stats
                self.last_error = repr(exc)

    def stop(self) -> None:
        self._stopping = True
        self._wakeup.set()
        self._thread.join(timeout=30.0)
