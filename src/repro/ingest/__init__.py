"""Streaming ingest: durable writes into a serving index, always queryable.

PRs 1–7 made the index fast to build, fast to query and rotatable while
serving — but still build-then-frozen.  This package closes ROADMAP item 2:
documents appended *while queries are in flight*, with the crash-safety of
a write-ahead log and answers that stay bit-identical to a from-scratch
build at every instant.  Three pieces, smallest first:

* :mod:`repro.io.walformat` (lives beside the container format) — the
  length+CRC framed, fsync-on-commit WAL segment; replay tolerates the
  torn tail a crash mid-append leaves.
* :class:`~repro.ingest.overlay.DeltaOverlayIndex` — an immutable query
  view over (mmap base snapshot, in-memory delta RAMBO).  Probes gather
  ``base_words | delta_words`` inside the batch kernel — one extra array OR
  per term — which is *exactly* the combined index's bit plane, so every
  query path (full, sparse, batch, conjunctive) returns documents **and
  probe counts** bit-identical to a from-scratch build of the same
  documents.  Asserted by the property harness, not assumed.
* :class:`~repro.ingest.engine.IngestEngine` — the append/recover/compact
  protocol: WAL fsync before acknowledgement, delta absorption via the
  existing bulk ``add_documents`` path, overlay publication through the
  serving :class:`~repro.serve.snapshot.SnapshotManager` (queries never
  block, in-flight batches drain on their own generation), and a
  :class:`~repro.ingest.engine.BackgroundCompactor` that folds the delta
  into a fresh ``RAMBO2`` snapshot via ``merge_indexes``/``save_mmap``,
  rotates it in, and truncates the WAL — crash-consistent at every step
  via an atomically replaced manifest.
"""

from repro.ingest.engine import AppendResult, BackgroundCompactor, IngestEngine
from repro.ingest.overlay import DeltaOverlayIndex

__all__ = [
    "AppendResult",
    "BackgroundCompactor",
    "DeltaOverlayIndex",
    "IngestEngine",
]
