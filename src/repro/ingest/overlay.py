"""The delta-overlay query view: base snapshot OR in-memory delta, exactly.

The obvious way to overlay a delta — query base and delta separately and OR
the per-term document bitmaps — is **wrong** for RAMBO: a combined BFU can
report a term via *mixed* bits (probe position ``p1`` set by a base
document, ``p2`` by a delta document), a false positive neither component
index reports alone, and the sparse path's probe accounting would diverge
long before that.  The only construction that is bit-identical to a
from-scratch build is to OR at the **bit-plane level**: a term hits BFU
``(r, b)`` of the combined index iff every probe position is set in
``base_words[r, b] | delta_words[r, b]``.

This module gets that without materialising the OR: the batch probe kernel
(:func:`repro.bloom.bitarray.probe_words_batch`) accepts a *pair* of planes
per repetition and ORs the gathered words per probe — one extra gather+OR
per term per repetition against the (small, hot) delta plane, while the
base plane keeps gathering zero-copy from the mmap page cache.  Because
Bloom insertion is a pure OR-scatter and partition assignment depends only
on (name, family, config), the overlay with concatenated bookkeeping is
*definitionally* the index a from-scratch build of base-then-delta
documents produces — same documents, same probe counts, every query method.
The Hypothesis harness in ``tests/test_ingest.py`` asserts this after every
generated interleaving rather than trusting the argument.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.bloom.bitarray import popcount_words
from repro.core.rambo import Rambo


class DeltaOverlayIndex(Rambo):
    """An immutable, servable view of ``base ∪ delta`` (disjoint documents).

    Parameters
    ----------
    base:
        The established snapshot — typically mmap-opened, but any
        :class:`Rambo` works.  Not copied; its bit planes are referenced
        (zero-copy for a mapped base).
    delta:
        The in-memory delta absorbing appended documents.  Its stacked bit
        planes are captured *at construction* (the stacks are fresh copies
        the delta abandons on its next mutation), so the overlay is a true
        snapshot: later appends to the delta are invisible until a new
        overlay is published.

    The overlay rejects every mutation (:meth:`add_documents`, ``fold``,
    ``save_mmap``) with a clean error — writes go through the
    :class:`~repro.ingest.engine.IngestEngine`, which publishes a fresh
    overlay per acknowledged batch.
    """

    def __init__(self, base: Rambo, delta: Rambo) -> None:
        if base.config != delta.config:
            raise ValueError(
                f"overlay parts disagree on config: base {base.config} "
                f"vs delta {delta.config}"
            )
        if base.num_partitions != delta.num_partitions:
            raise ValueError(
                "overlay parts disagree on partition count "
                f"({base.num_partitions} vs {delta.num_partitions})"
            )
        duplicates = [name for name in delta._doc_names if name in base._doc_ids]  # noqa: SLF001
        if duplicates:
            raise ValueError(
                f"delta re-indexes base documents: {duplicates[:3]!r}..."
                if len(duplicates) > 3
                else f"delta re-indexes base documents: {duplicates!r}"
            )
        # Prime both parts' stacked planes now; the references below then
        # stay frozen (any later delta mutation invalidates and rebuilds the
        # delta's own cache, abandoning these arrays to this overlay).
        base._refresh_member_arrays()  # noqa: SLF001
        delta._refresh_member_arrays()  # noqa: SLF001

        self.config = base.config
        self.k = base.k
        self._family = base._family  # noqa: SLF001
        self._bfus = base._bfus  # noqa: SLF001 - geometry only; probes use _planes
        offset = len(base._doc_names)  # noqa: SLF001
        self._doc_names = list(base._doc_names) + list(delta._doc_names)  # noqa: SLF001
        self._doc_ids = {name: i for i, name in enumerate(self._doc_names)}
        self._assignments = [
            list(base_row) + list(delta_row)
            for base_row, delta_row in zip(base._assignments, delta._assignments)  # noqa: SLF001
        ]
        self._members = [
            [
                list(base_ids) + [offset + i for i in delta_ids]
                for base_ids, delta_ids in zip(base_row, delta_row)
            ]
            for base_row, delta_row in zip(base._members, delta._members)  # noqa: SLF001
        ]
        self._mapped_bits = None
        self._base = base
        self._delta = delta
        self._planes = [
            (base._bit_cache[r], delta._bit_cache[r])  # noqa: SLF001
            for r in range(base.repetitions)
        ]
        self._invalidate_caches()

    # -- the one behavioural override: plane pairs in the bit cache --------------------

    def _refresh_member_arrays(self) -> None:
        if not self._member_arrays_dirty:
            return
        self._member_arrays = [
            [np.asarray(ids, dtype=np.int64) for ids in row] for row in self._members
        ]
        # Each cache entry is a (base_plane, delta_plane) pair;
        # probe_words_batch ORs the gathered words of the two planes, which
        # equals probing the OR-merged plane — the from-scratch index's bits.
        self._bit_cache = list(self._planes)
        self._assignment_arrays = [
            np.asarray(row, dtype=np.int64) % self.num_partitions
            for row in self._assignments
        ]
        self._member_arrays_dirty = False

    # -- immutability ------------------------------------------------------------------

    @property
    def readonly(self) -> bool:
        """Overlays are always read-only views (appends publish a new one)."""
        return True

    def _require_writable(self) -> None:
        raise ValueError(
            "the delta overlay is an immutable query view; append through "
            "the IngestEngine (which publishes a fresh overlay) instead"
        )

    def fold(self) -> "Rambo":
        raise ValueError(
            "cannot fold a delta overlay; compact it into a snapshot first"
        )

    def save_mmap(self, path) -> int:
        raise ValueError(
            "cannot save a delta overlay; the IngestEngine's compaction "
            "writes the merged snapshot"
        )

    def bfu(self, repetition: int, partition: int):
        raise ValueError(
            "a delta overlay holds no materialised BFUs; query it, or "
            "compact base+delta into a snapshot"
        )

    # -- accounting (delegates to the two parts) ---------------------------------------

    @property
    def base(self) -> Rambo:
        """The established snapshot under this view."""
        return self._base

    @property
    def delta(self) -> Rambo:
        """The in-memory delta under this view (documents appended since)."""
        return self._delta

    @property
    def num_delta_documents(self) -> int:
        """Documents served from the delta plane (not yet compacted)."""
        return len(self._doc_names) - len(self._base._doc_names)  # noqa: SLF001

    def size_components(self) -> Dict[str, int]:
        return {
            "bfus": (
                self._base.size_components()["bfus"]
                + self._delta.size_components()["bfus"]
            ),
            "assignments": 4 * self.repetitions * len(self._doc_names),
            "names": sum(len(name.encode("utf-8")) for name in self._doc_names),
        }

    def size_in_bytes(self) -> int:
        return sum(self.size_components().values())

    def fill_ratios(self) -> List[List[float]]:
        """Fill of the *effective* (ORed) planes — what queries actually probe."""
        bits = self.config.bfu_bits
        ratios: List[List[float]] = []
        for base_plane, delta_plane in self._planes:
            combined = np.bitwise_or(
                np.asarray(base_plane), np.asarray(delta_plane)
            )
            ratios.append(
                [popcount_words(combined[b]) / bits for b in range(combined.shape[0])]
            )
        return ratios

    def __repr__(self) -> str:
        return (
            f"DeltaOverlayIndex(B={self.num_partitions}, R={self.repetitions}, "
            f"base_documents={len(self._base._doc_names)}, "  # noqa: SLF001
            f"delta_documents={self.num_delta_documents})"
        )
