"""The planner: estimate, choose, order, execute, post-filter.

A :class:`Backend` is one *executable evaluation strategy*, not necessarily
one data structure.  The planner's default choice set for a RAMBO artifact
is three strategies over the **same** index object::

    batch-full    query_terms_batch(method="full")   — the vectorised engine
    batch-sparse  query_terms_batch(method="sparse") — RAMBO+ pruning
    scalar-full   per-term query_term loop           — the scalar reference

All three provably return the same document sets (RAMBO's sparse path is
an exact pruning, and the batch engine is the vectorised form of the
scalar loop), which is what lets the planner promise its standing
invariant: planning changes *when and in what order* bits are probed,
never *which documents come back*.  Structurally different indexes (COBS,
SBT, inverted) expose the same ``capabilities()`` / ``cost_hints()`` hooks
so a multi-artifact deployment can rank them too — but they are separate
artifacts with their own false-positive profiles, so they are registered
explicitly by the caller, never silently swapped in for a RAMBO query.

Given a batch, the planner (1) estimates per-term selectivity through the
index's cheap summary (one repetition-0 gather for RAMBO), (2) prices each
backend with the :class:`~repro.plan.cost.CostModel` at the batch's
``(n_terms, mean selectivity)`` point and runs the cheapest, (3) for
conjunctive (AND-chain) queries reorders terms rarest-first so the
engine's early exit fires as soon as possible, and (4) intersects the
results with the metadata mask when the caller attached filters.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import MembershipIndex, QueryResult, Term, check_query_method
from repro.plan.cost import CostModel, measure_samples

#: Terms sampled from a batch for the selectivity estimate that prices
#: backends.  Conjunction ordering estimates every term (the estimate is
#: ~1/R of a query and the ordering needs all of them); disjunctive
#: pricing only needs the mean, so a bounded sample keeps planning O(1).
SELECTIVITY_SAMPLE_TERMS = 64

#: The two execution shapes the planner understands.
PLAN_MODES = ("batch", "conjunction")


class Backend:
    """One executable evaluation strategy over one index artifact."""

    def __init__(
        self,
        name: str,
        index: MembershipIndex,
        *,
        method: str = "full",
        scalar: bool = False,
    ) -> None:
        check_query_method(method)
        self.name = name
        self.index = index
        self.method = method
        self.scalar = scalar
        self._term_takes_method = (
            "method" in inspect.signature(index.query_term).parameters
        )

    def _scalar_term(self, term: Term) -> QueryResult:
        if self._term_takes_method:
            return self.index.query_term(term, method=self.method)
        return self.index.query_term(term)

    def run_batch(self, terms: Sequence[Term]) -> List[QueryResult]:
        """Independent per-term results for the whole batch."""
        if self.scalar:
            return [self._scalar_term(term) for term in terms]
        return self.index.query_terms_batch(terms, method=self.method)

    def run_conjunction(self, terms: Sequence[Term]) -> QueryResult:
        """Documents containing every term of the chain."""
        if self.scalar:
            return self._scalar_conjunction(terms)
        return self.index.query_terms(terms, method=self.method)

    def _scalar_conjunction(self, terms: Sequence[Term]) -> QueryResult:
        documents: Optional[set] = None
        probes = 0
        for term in terms:
            result = self._scalar_term(term)
            probes += result.filters_probed
            if documents is None:
                documents = set(result.documents)
            else:
                documents &= result.documents
            if not documents:
                break
        if documents is None:
            documents = set(self.index.document_names)
        return QueryResult(documents=frozenset(documents), filters_probed=probes)

    def __repr__(self) -> str:
        return f"Backend({self.name!r}, method={self.method!r}, scalar={self.scalar})"


@dataclass
class QueryPlan:
    """What the planner decided for one batch, and why."""

    mode: str
    backend: str
    requested: str
    n_terms: int
    estimated_selectivity: float
    estimates: Dict[str, float] = field(default_factory=dict)
    ordered: bool = False
    filtered: bool = False

    def as_dict(self) -> Dict:
        """JSON-ready form, served by ``/stats`` and ``POST /query``."""
        return {
            "mode": self.mode,
            "backend": self.backend,
            "requested": self.requested,
            "n_terms": self.n_terms,
            "estimated_selectivity": round(self.estimated_selectivity, 6),
            "estimates": {
                name: round(seconds, 9) for name, seconds in sorted(self.estimates.items())
            },
            "ordered": self.ordered,
            "filtered": self.filtered,
        }


@dataclass
class PlannedExecution:
    """A plan plus the results of running it."""

    plan: QueryPlan
    results: List[QueryResult]

    @property
    def result(self) -> QueryResult:
        """The single result of a conjunction execution."""
        if self.plan.mode != "conjunction":
            raise AttributeError("batch executions carry .results, not .result")
        return self.results[0]


def choose_method(
    index: MembershipIndex,
    n_terms: int,
    selectivity: float,
    cost_model: Optional[CostModel] = None,
) -> Tuple[str, Dict[str, float]]:
    """The cheaper of ``full``/``sparse`` for *index* at a workload point.

    The lightweight entry point the query service uses to resolve
    ``backend="auto"`` into a concrete coalescable ``method`` without
    building a full :class:`Planner` around a rotating snapshot.  Returns
    the method and the per-strategy cost estimates that justified it.
    """
    model = default_cost_model(index)
    if cost_model is not None:
        model = cost_model.merged_with(model)
    estimates = {"batch-full": model.estimate("batch-full", n_terms, selectivity)}
    if index.capabilities().get("sparse") and "batch-sparse" in model:
        estimates["batch-sparse"] = model.estimate("batch-sparse", n_terms, selectivity)
    chosen = min(estimates, key=estimates.get)
    return ("sparse" if chosen == "batch-sparse" else "full"), estimates


def default_cost_model(index: MembershipIndex) -> CostModel:
    """A model seeded from the index's :meth:`cost_hints` priors."""
    model = CostModel()
    for name, coefficients in index.cost_hints().items():
        model.set_backend(name, coefficients)
    if "batch-full" not in model:
        # Structures without a batch kernel still price a "batch" entry —
        # their query_terms_batch IS the scalar loop.
        model.set_backend("batch-full", model.coefficients("scalar-full") or {})
    return model


class Planner:
    """Cost-based executor over a set of registered backends."""

    def __init__(
        self,
        backends: Sequence[Backend],
        *,
        cost_model: Optional[CostModel] = None,
        metadata=None,
        estimator: Optional[MembershipIndex] = None,
    ) -> None:
        if not backends:
            raise ValueError("a Planner needs at least one backend")
        self._backends: Dict[str, Backend] = {}
        for backend in backends:
            if backend.name in self._backends:
                raise ValueError(f"duplicate backend name {backend.name!r}")
            self._backends[backend.name] = backend
        #: The index whose summaries drive selectivity estimation (and whose
        #: cost_hints seed the default model): the first backend's artifact.
        self._estimator = estimator if estimator is not None else backends[0].index
        defaults = default_cost_model(self._estimator)
        self.cost_model = (
            cost_model.merged_with(defaults) if cost_model is not None else defaults
        )
        self.metadata = metadata
        self._counters: Dict[str, object] = {
            "plans": 0,
            "auto": 0,
            "filtered": 0,
            "ordered": 0,
            "by_backend": {},
            "by_mode": {},
        }

    @classmethod
    def for_index(
        cls,
        index: MembershipIndex,
        *,
        cost_model: Optional[CostModel] = None,
        metadata=None,
        include_scalar: bool = True,
    ) -> "Planner":
        """The standard single-artifact planner: three strategies, one index.

        ``include_scalar=False`` drops the scalar reference from the choice
        set (it exists so benchmarks can price the worst static choice; a
        production planner never wants it chosen *or* offered).
        """
        backends = [Backend("batch-full", index, method="full")]
        if index.capabilities().get("sparse"):
            backends.append(Backend("batch-sparse", index, method="sparse"))
        if include_scalar:
            backends.append(Backend("scalar-full", index, method="full", scalar=True))
        return cls(backends, cost_model=cost_model, metadata=metadata, estimator=index)

    @property
    def backend_names(self) -> List[str]:
        return sorted(self._backends)

    def backend(self, name: str) -> Backend:
        try:
            return self._backends[name]
        except KeyError:
            raise ValueError(
                f"unknown backend {name!r} (expected 'auto' or one of "
                f"{', '.join(self.backend_names)})"
            ) from None

    # -- planning ------------------------------------------------------------------------

    def estimate_selectivities(self, terms: Sequence[Term]) -> np.ndarray:
        """Per-term estimates through the estimator index's cheap summary."""
        return self._estimator.estimate_selectivities(terms)

    def plan(
        self,
        terms: Sequence[Term],
        *,
        mode: str = "batch",
        backend: str = "auto",
        per_term: Optional[np.ndarray] = None,
    ) -> QueryPlan:
        """Price every backend for this batch and pick one.

        An explicit *backend* short-circuits the choice but still records
        the estimates, so ``/stats`` shows what "auto" would have done.
        """
        if mode not in PLAN_MODES:
            raise ValueError(f"unknown plan mode {mode!r} (expected one of {PLAN_MODES})")
        n_terms = len(terms)
        if per_term is None:
            sample = terms[:SELECTIVITY_SAMPLE_TERMS]
            per_term = self.estimate_selectivities(sample)
        selectivity = float(np.mean(per_term)) if len(per_term) else 0.0
        estimates = {
            name: self.cost_model.estimate(name, n_terms, selectivity)
            for name in self._backends
            if name in self.cost_model
        }
        if backend == "auto":
            if not estimates:
                raise ValueError("no cost constants for any registered backend")
            chosen = min(estimates, key=estimates.get)
        else:
            chosen = self.backend(backend).name
        return QueryPlan(
            mode=mode,
            backend=chosen,
            requested=backend,
            n_terms=n_terms,
            estimated_selectivity=selectivity,
            estimates=estimates,
        )

    # -- execution -----------------------------------------------------------------------

    def execute(
        self,
        terms: Sequence[Term],
        *,
        mode: str = "batch",
        backend: str = "auto",
        filters: Optional[Mapping] = None,
        order_terms: bool = True,
    ) -> PlannedExecution:
        """Plan and run one batch; returns results plus the plan that made them.

        ``mode="batch"`` answers every term independently (one result per
        term, order preserved); ``mode="conjunction"`` answers the AND
        chain, by default reordered rarest-term-first — reordering an AND
        chain cannot change its intersection, only how soon the early exit
        fires.  *filters* restrict results to documents matching the
        attached metadata store (:meth:`repro.meta.MetadataStore.apply`).
        """
        terms = list(terms)
        estimate_all = mode == "conjunction" and order_terms and len(terms) > 1
        sample = terms if estimate_all else terms[:SELECTIVITY_SAMPLE_TERMS]
        per_term = self.estimate_selectivities(sample)
        plan = self.plan(terms, mode=mode, backend=backend, per_term=per_term)
        chosen = self.backend(plan.backend)

        if mode == "batch":
            results = chosen.run_batch(terms)
        else:
            ordered_terms = terms
            if estimate_all:
                # Stable sort: uninformative (all-equal) estimates keep the
                # caller's order, informative ones front-load rare terms.
                order = np.argsort(per_term, kind="stable")
                ordered_terms = [terms[i] for i in order]
                plan.ordered = bool(np.any(order != np.arange(len(terms))))
            results = [chosen.run_conjunction(ordered_terms)]

        if filters:
            if self.metadata is None:
                raise ValueError(
                    "cannot filter: this planner has no metadata store attached "
                    "(was the index built with --metadata?)"
                )
            results = self.metadata.apply_batch(results, filters)
            plan.filtered = True

        self._count(plan)
        return PlannedExecution(plan=plan, results=results)

    def _count(self, plan: QueryPlan) -> None:
        self._counters["plans"] += 1
        if plan.requested == "auto":
            self._counters["auto"] += 1
        if plan.filtered:
            self._counters["filtered"] += 1
        if plan.ordered:
            self._counters["ordered"] += 1
        by_backend = self._counters["by_backend"]
        by_backend[plan.backend] = by_backend.get(plan.backend, 0) + 1
        by_mode = self._counters["by_mode"]
        by_mode[plan.mode] = by_mode.get(plan.mode, 0) + 1

    def stats(self) -> Dict:
        """Plan-decision counters, JSON-ready (served under ``/stats``)."""
        return {
            "plans": self._counters["plans"],
            "auto": self._counters["auto"],
            "filtered": self._counters["filtered"],
            "ordered": self._counters["ordered"],
            "by_backend": dict(self._counters["by_backend"]),
            "by_mode": dict(self._counters["by_mode"]),
            "backends": self.backend_names,
            "cost_model": self.cost_model.to_dict(),
        }

    # -- calibration ---------------------------------------------------------------------

    def calibrate(
        self,
        *,
        sizes: Sequence[int] = (16, 128, 512),
        repeats: int = 3,
        seed: int = 0,
        terms: Optional[Sequence[Term]] = None,
    ) -> CostModel:
        """Micro-measure every backend on this machine and refit the model.

        Probes are random 63-bit codes (almost all negative — the cheap
        end of the selectivity axis) plus, when the caller supplies
        *terms* actually present in the corpus, a positive pool whose
        measured mean selectivity labels the expensive end.  The fitted
        model replaces :attr:`cost_model` and is returned for persisting
        (``CostModel.save_for``).
        """
        rng = np.random.default_rng(seed)
        pool_size = max(max(sizes), 1)
        negative = rng.integers(0, 2**63, size=pool_size, dtype=np.uint64)
        pools: Dict[float, Sequence] = {}
        pools[self._pool_selectivity(negative)] = negative
        if terms is not None and len(terms):
            positive = list(terms)
            pools[self._pool_selectivity(positive)] = positive
        runners = {
            name: backend.run_batch for name, backend in self._backends.items()
        }
        samples = measure_samples(runners, pools, sizes, repeats=repeats)
        fitted = CostModel()
        fitted.fit(samples)
        self.cost_model = fitted.merged_with(self.cost_model)
        return self.cost_model

    def _pool_selectivity(self, pool: Sequence[Term]) -> float:
        estimates = self.estimate_selectivities(list(pool))
        return float(np.mean(estimates)) if len(estimates) else 0.0

    def __repr__(self) -> str:
        return f"Planner(backends={self.backend_names})"
