"""The per-backend linear cost model and its versioned JSON persistence.

Each backend's batch cost is modelled as::

    seconds(n_terms, selectivity) =
        setup + n_terms * (per_term + per_term_selectivity * selectivity)

Three constants per backend is deliberately crude — the model only has to
*rank* backends for a concrete ``(n_terms, selectivity)`` point, not
predict wall-clock, and the linear form is exactly what the measured grids
in ``bench_ablation.py`` / ``repro-rambo calibrate`` look like: a setup
intercept (snapshot lease, probe-matrix build, Python dispatch), a
per-term slope (hash + gather per term), and a selectivity-scaled slope
(survivor handling — candidate extraction in the sparse path, result
materialisation everywhere).

Constants come from one of three places, in increasing order of trust:

1. ``cost_hints()`` defaults shipped by each :class:`MembershipIndex`
   subclass (order-of-magnitude priors, good enough to avoid the scalar
   reference path);
2. a least-squares :meth:`CostModel.fit` over micro-measurements taken by
   ``repro-rambo calibrate`` against the actual artifact on the actual
   machine;
3. :meth:`CostModel.fit_from_grid` over the machine-readable timing grid
   that ``bench_ablation.py`` appends to the ``REPRO_BENCH_JSON`` side
   channel — the same measurements the ablation study reports.

A fitted model is persisted as versioned JSON next to the index artifact
(``<index>.cost.json``) and loaded through :func:`repro.core.tuning`'s
``load_cost_model`` wrapper, mirroring how tuned thread counts travel.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, Path]

#: Version stamp written into (and required from) every cost-model file.
COST_MODEL_FORMAT_VERSION = 1

#: Suffix appended to the index artifact's path to name its cost model.
COST_MODEL_SUFFIX = ".cost.json"

#: Coefficient names, in feature order ``[1, n, n * selectivity]``.
COEFFICIENT_NAMES = ("setup", "per_term", "per_term_selectivity")

#: One calibration observation: (backend, n_terms, selectivity, seconds).
Sample = Tuple[str, int, float, float]


def cost_model_path(index_path: PathLike) -> Path:
    """The cost-model file that belongs to the index artifact at *index_path*."""
    return Path(str(index_path) + COST_MODEL_SUFFIX)


def _clean_coefficients(coefficients: Mapping[str, object]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for name in COEFFICIENT_NAMES:
        value = float(coefficients.get(name, 0.0))
        if not np.isfinite(value):
            raise ValueError(f"cost coefficient {name!r} must be finite, got {value!r}")
        out[name] = value
    return out


class CostModel:
    """Per-backend linear cost constants with fit / estimate / persist."""

    def __init__(
        self, backends: Optional[Mapping[str, Mapping[str, object]]] = None
    ) -> None:
        self._backends: Dict[str, Dict[str, float]] = {}
        if backends:
            for name, coefficients in backends.items():
                self.set_backend(name, coefficients)

    def set_backend(self, name: str, coefficients: Mapping[str, object]) -> None:
        """Record the constants of backend *name* (missing ones default to 0)."""
        if not name:
            raise ValueError("backend name must be non-empty")
        self._backends[str(name)] = _clean_coefficients(coefficients)

    def coefficients(self, name: str) -> Optional[Dict[str, float]]:
        """The constants of backend *name*, or ``None`` when uncalibrated."""
        found = self._backends.get(name)
        return dict(found) if found is not None else None

    @property
    def backend_names(self) -> List[str]:
        return sorted(self._backends)

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def __len__(self) -> int:
        return len(self._backends)

    def estimate(self, name: str, n_terms: int, selectivity: float) -> float:
        """Predicted batch seconds for backend *name* at a workload point.

        Estimates are floored at a tiny positive epsilon so a sloppy fit
        (negative intercept from noise) can never produce a negative cost
        that would dominate every comparison.
        """
        coefficients = self._backends.get(name)
        if coefficients is None:
            raise KeyError(f"no cost constants for backend {name!r}")
        n = max(int(n_terms), 0)
        sel = min(max(float(selectivity), 0.0), 1.0)
        estimate = coefficients["setup"] + n * (
            coefficients["per_term"] + coefficients["per_term_selectivity"] * sel
        )
        return max(estimate, 1e-12)

    def merged_with(self, defaults: "CostModel") -> "CostModel":
        """A new model using *defaults* for backends this model lacks."""
        merged = CostModel(defaults._backends)
        for name, coefficients in self._backends.items():
            merged.set_backend(name, coefficients)
        return merged

    # -- fitting ------------------------------------------------------------------------

    def fit(self, samples: Iterable[Sample]) -> List[str]:
        """Least-squares fit of the constants from raw observations.

        *samples* are ``(backend, n_terms, selectivity, seconds)`` tuples;
        each backend is fit independently over the feature matrix
        ``[1, n, n * selectivity]``.  Rank-deficient designs (e.g. all
        samples at selectivity 0) are handled by ``lstsq``'s minimum-norm
        solution — the unconstrained coefficient simply stays 0.  Negative
        slopes are clamped to 0 (noise, not physics).  Returns the backend
        names that were (re)fit.
        """
        grouped: Dict[str, List[Tuple[int, float, float]]] = {}
        for backend, n_terms, selectivity, seconds in samples:
            grouped.setdefault(str(backend), []).append(
                (int(n_terms), float(selectivity), float(seconds))
            )
        fitted: List[str] = []
        for backend, points in grouped.items():
            design = np.array(
                [[1.0, n, n * sel] for n, sel, _ in points], dtype=np.float64
            )
            observed = np.array([seconds for _, _, seconds in points], dtype=np.float64)
            solution, *_ = np.linalg.lstsq(design, observed, rcond=None)
            coefficients = {
                name: max(float(value), 0.0)
                for name, value in zip(COEFFICIENT_NAMES, solution)
            }
            self.set_backend(backend, coefficients)
            fitted.append(backend)
        return sorted(fitted)

    def fit_from_grid(self, payload: Iterable[Mapping]) -> List[str]:
        """Fit from the ``REPRO_BENCH_JSON`` tables that carry a timing grid.

        *payload* is the parsed JSONL stream that ``print_table`` appends —
        ``{"title": ..., "rows": {name: {column: value}}}`` objects.  Grid
        rows are recognised by carrying the three columns ``terms``,
        ``selectivity`` and ``seconds``; the backend name is the row name up
        to the first ``"@"`` (rows are named ``<backend>@n=<n>,sel=<s>``).
        Tables without grid-shaped rows are ignored, so the whole bench-run
        stream can be piped in unfiltered.  Returns the backends fit.
        """
        samples: List[Sample] = []
        for table in payload:
            rows = table.get("rows")
            if not isinstance(rows, Mapping):
                continue
            for row_name, columns in rows.items():
                if not isinstance(columns, Mapping):
                    continue
                if not {"terms", "selectivity", "seconds"} <= set(columns):
                    continue
                backend = str(row_name).split("@", 1)[0]
                samples.append(
                    (
                        backend,
                        int(columns["terms"]),
                        float(columns["selectivity"]),
                        float(columns["seconds"]),
                    )
                )
        if not samples:
            raise ValueError(
                "no timing-grid rows found (expected rows with 'terms', "
                "'selectivity' and 'seconds' columns, as emitted by "
                "bench_ablation.py's backend timing grid)"
            )
        return self.fit(samples)

    # -- persistence --------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "format_version": COST_MODEL_FORMAT_VERSION,
            "backends": {
                name: dict(coefficients)
                for name, coefficients in sorted(self._backends.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CostModel":
        version = payload.get("format_version")
        if version != COST_MODEL_FORMAT_VERSION:
            raise ValueError(
                f"unsupported cost model version {version!r} "
                f"(this reader understands version {COST_MODEL_FORMAT_VERSION})"
            )
        backends = payload.get("backends")
        if not isinstance(backends, Mapping):
            raise ValueError("cost model is missing the 'backends' mapping")
        return cls(backends)

    def save(self, path: PathLike) -> int:
        """Write the model JSON to *path*; returns the bytes written."""
        data = json.dumps(self.to_dict(), indent=2) + "\n"
        path = Path(path)
        path.write_text(data, encoding="utf-8")
        return len(data.encode("utf-8"))

    @classmethod
    def load(cls, path: PathLike) -> "CostModel":
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not a valid cost model: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{path} is not a valid cost model (not an object)")
        return cls.from_dict(payload)

    def save_for(self, index_path: PathLike) -> Path:
        """Write the model next to the index artifact; returns its path."""
        target = cost_model_path(index_path)
        self.save(target)
        return target

    @classmethod
    def load_for(cls, index_path: PathLike) -> Optional["CostModel"]:
        """The calibrated model of the index at *index_path*, or ``None``."""
        target = cost_model_path(index_path)
        if not target.exists():
            return None
        return cls.load(target)

    def __repr__(self) -> str:
        return f"CostModel(backends={self.backend_names})"


def measure_samples(
    runners: Mapping[str, Callable[[Sequence], object]],
    term_pools: Mapping[float, Sequence],
    sizes: Sequence[int],
    *,
    repeats: int = 3,
    clock: Callable[[], float] = time.perf_counter,
) -> List[Sample]:
    """Micro-measure each runner over a batch-size × selectivity grid.

    *runners* maps backend name to a callable executing one batch of terms;
    *term_pools* maps a nominal selectivity label to a pool of terms of
    roughly that selectivity.  For each (backend, size, selectivity) cell
    the batch is run ``repeats`` times and the **minimum** wall time kept —
    the standard micro-benchmark noise floor.  One warm-up run per backend
    keeps cold-start costs (mmap page-in, lazy probe matrices) out of the
    fit.  Returns samples ready for :meth:`CostModel.fit`.
    """
    samples: List[Sample] = []
    for backend, run in runners.items():
        warmed = False
        for selectivity, pool in term_pools.items():
            pool = list(pool)
            if not pool:
                continue
            for size in sizes:
                if size <= 0:
                    continue
                batch = [pool[i % len(pool)] for i in range(size)]
                if not warmed:
                    run(batch)
                    warmed = True
                best = min(
                    _timed(run, batch, clock) for _ in range(max(int(repeats), 1))
                )
                samples.append((backend, size, float(selectivity), best))
    return samples


def _timed(run: Callable[[Sequence], object], batch: Sequence, clock) -> float:
    start = clock()
    run(batch)
    return clock() - start
