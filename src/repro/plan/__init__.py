"""Cost-based query planning: pick the backend, order, and post-filters.

The repository serves several queryable structures (RAMBO full/sparse,
COBS, the SBT family, the inverted index) whose batch-size/selectivity
sweet spots differ by an order of magnitude — and even one artifact offers
several evaluation strategies (vectorised batch vs the scalar reference,
full vs RAMBO+ sparse pruning).  This package turns backend choice from a
caller-supplied constant into a measured decision:

* :mod:`repro.plan.cost` — a tiny linear :class:`CostModel` per backend
  (``setup + n_terms * (per_term + per_term_selectivity * selectivity)``),
  fit from micro-measurements and persisted as versioned JSON next to the
  index artifact.
* :mod:`repro.plan.planner` — :class:`Planner`: estimates each registered
  backend's cost for a concrete query batch, runs the cheapest, orders
  conjunctive AND chains by estimated term selectivity (rarest term first,
  so the early exit fires sooner) and applies post-query metadata filters
  (:mod:`repro.meta`).

The standing invariant: the planner is an **optimizer, not an oracle** —
every planned execution returns the same document sets as the naive RAMBO
full path on the same terms (property-tested, and gated unconditionally in
``benchmarks/bench_planner.py``).
"""

from repro.plan.cost import (
    COST_MODEL_FORMAT_VERSION,
    CostModel,
    cost_model_path,
)
from repro.plan.planner import (
    Backend,
    Planner,
    QueryPlan,
    choose_method,
)

__all__ = [
    "COST_MODEL_FORMAT_VERSION",
    "Backend",
    "CostModel",
    "Planner",
    "QueryPlan",
    "choose_method",
    "cost_model_path",
]
