"""Exact inverted index: term → set of documents.

This is both the Table 1 reference row (best-case O(1) query, enormous
construction/memory cost for large archives) and the ground truth every
false-positive measurement in the experiments is computed against — by
construction it has neither false positives nor false negatives.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Set

from repro.core.base import MembershipIndex, QueryResult, Term
from repro.kmers.extraction import DEFAULT_K, KmerDocument


class InvertedIndex(MembershipIndex):
    """Exact posting-list index.

    Parameters
    ----------
    k:
        k-mer length used for raw-sequence queries.
    """

    def __init__(self, k: int = DEFAULT_K) -> None:
        self.k = k
        self._postings: Dict[Term, Set[str]] = {}
        self._doc_names: List[str] = []
        self._name_set: Set[str] = set()

    @property
    def document_names(self) -> List[str]:
        return list(self._doc_names)

    def add_document(self, document: KmerDocument) -> None:
        """Append every term of the document to its posting list."""
        self.add_documents((document,))

    def add_documents(self, documents: Iterable[KmerDocument]) -> None:
        """Bulk insert: one duplicate check per batch, then posting appends.

        Mirrors the ``add_many`` path the probabilistic structures gained so
        the construction benchmarks compare like for like; duplicate names
        (within the batch or against the index) are rejected before any
        posting is written.
        """
        docs = list(documents)
        batch_names = set()
        for doc in docs:
            if doc.name in self._name_set or doc.name in batch_names:
                raise ValueError(f"document {doc.name!r} already indexed")
            batch_names.add(doc.name)
        postings = self._postings
        for doc in docs:
            self._doc_names.append(doc.name)
            self._name_set.add(doc.name)
            for term in doc.terms:
                postings.setdefault(term, set()).add(doc.name)

    def query_term(self, term: Term) -> QueryResult:
        """Exact posting-list lookup; ``filters_probed`` counts one dict probe."""
        documents = self._postings.get(term, set())
        return QueryResult(documents=frozenset(documents), filters_probed=1)

    def multiplicity(self, term: Term) -> int:
        """Exact multiplicity ``V`` of a term."""
        return len(self._postings.get(term, ()))

    def num_terms(self) -> int:
        """Number of distinct terms across the collection."""
        return len(self._postings)

    def estimate_selectivities(self, terms) -> "np.ndarray":
        """Exact selectivities from the posting lists (no estimation error).

        The reference structure can answer the planner's estimation question
        precisely: multiplicity over document count, per term.
        """
        import numpy as np

        if not self._doc_names:
            return np.zeros(len(terms), dtype=np.float64)
        return np.array(
            [self.multiplicity(term) / len(self._doc_names) for term in terms],
            dtype=np.float64,
        )

    def cost_hints(self) -> dict:
        """Posting lookups are O(1) per term plus result-size materialisation."""
        hints = super().cost_hints()
        hints["batch-full"] = {
            "setup": 1e-6,
            "per_term": 3e-7,
            "per_term_selectivity": 1e-8 * max(len(self._doc_names), 1),
        }
        return hints

    def size_in_bytes(self) -> int:
        """Approximate serialized size: every posting is a (term, doc-id) pair.

        Terms are counted at 8 bytes (k-mers fit a 64-bit integer; words are
        comparable) and document ids at 4 bytes — the ``log K`` bit-precision
        ids Table 1 charges the inverted index for.
        """
        posting_entries = sum(len(docs) for docs in self._postings.values())
        term_bytes = 8 * len(self._postings)
        posting_bytes = 4 * posting_entries
        name_bytes = sum(len(name.encode("utf-8")) for name in self._doc_names)
        return term_bytes + posting_bytes + name_bytes

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(documents={len(self._doc_names)}, terms={len(self._postings)})"
        )
