"""COBS / BIGSI: the bit-sliced array of Bloom filters.

BIGSI keeps one Bloom filter per document, all with the same size, hash count
and seed, arranged as a bit matrix whose *columns* are documents and *rows*
are bit positions.  A query hashes the term to ``eta`` rows and ANDs those
rows together; the set bits of the resulting row are the candidate documents.
Query work is therefore linear in the number of documents ``K`` but with a
very small constant (a few word-wide AND operations per 64 documents), which
is why COBS is the strongest practical baseline in the paper.

COBS additionally compacts filters of heterogeneous sizes into folders of
similar-cardinality documents; we implement the classic (uncompacted) layout
plus an optional ``folder_size`` compaction that groups documents and sizes
each folder's filters from its largest member, mirroring COBS' memory saving.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.bloom.bitarray import BitArray
from repro.bloom.bloom_filter import _normalise_key, optimal_num_bits
from repro.core.base import (
    MembershipIndex,
    QueryResult,
    Term,
    check_query_method,
    iter_term_chunks,
)
from repro.core.executor import (
    get_min_terms_per_shard,
    get_num_threads,
    in_worker,
    parallel_map,
    shard_ranges,
)
from repro.hashing.murmur3 import double_hashes, double_hashes_batch
from repro.kmers.extraction import DEFAULT_K, KmerDocument


class CobsIndex(MembershipIndex):
    """Bit-sliced signature index (one same-size Bloom filter per document).

    Parameters
    ----------
    num_bits:
        Bloom-filter size per document (rows of the bit matrix).
    num_hashes:
        Hash probes per term (3 in the paper's COBS configuration).
    k:
        k-mer length for raw-sequence queries.
    seed:
        Hash seed shared by every per-document filter.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int = 3,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.k = k
        self.seed = seed
        self._doc_names: List[str] = []
        self._doc_name_set: set = set()
        # Row-major bit matrix: _rows[bit_position] is a BitArray over documents.
        # Rows are materialised lazily (documents arrive one by one) as a list
        # of per-document column filters, then sliced on demand.
        self._columns: List[BitArray] = []
        self._row_cache: Optional[np.ndarray] = None
        # (num_bits, words_over_docs) uint64 memmap when the index was opened
        # from the on-disk mmap container; None for in-memory indexes.
        self._packed_rows: Optional[np.ndarray] = None

    @classmethod
    def for_capacity(
        cls,
        terms_per_document: int,
        fp_rate: float = 0.01,
        num_hashes: int = 3,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> "CobsIndex":
        """Size the per-document filters for the expected document cardinality."""
        num_bits = optimal_num_bits(terms_per_document, fp_rate)
        return cls(num_bits=num_bits, num_hashes=num_hashes, k=k, seed=seed)

    @property
    def document_names(self) -> List[str]:
        return list(self._doc_names)

    # -- construction --------------------------------------------------------------

    def add_document(self, document: KmerDocument) -> None:
        """Build the document's Bloom-filter column and append it to the matrix.

        Bulk column build: the whole term set is hashed in one vectorised
        pass and written into the column with a single word-OR scatter —
        bit-identical to the per-term scalar loop it replaced.
        """
        if self._packed_rows is not None:
            raise ValueError(
                "COBS index is memory-mapped read-only (its bit-sliced layout "
                "is fixed at save time); rebuild or load an in-memory index "
                "to add documents"
            )
        if document.name in self._doc_name_set:
            raise ValueError(f"document {document.name!r} already indexed")
        column = BitArray(self.num_bits)
        if len(document):
            column.set_many(self._positions_matrix(document.hash_keys()).ravel())
        self._doc_names.append(document.name)
        self._doc_name_set.add(document.name)
        self._columns.append(column)
        self._row_cache = None

    def _positions(self, term: Term) -> List[int]:
        return double_hashes(_normalise_key(term), self.num_hashes, self.num_bits, self.seed)

    def _positions_matrix(self, terms: Union[Sequence[Term], np.ndarray]) -> np.ndarray:
        """``(n_terms, eta)`` probe matrix; term-code arrays digest whole.

        Key normalisation (ints vectorise, str/bytes fall back per key) is
        centralised in :func:`double_hashes_batch`.
        """
        return double_hashes_batch(terms, self.num_hashes, self.num_bits, self.seed)

    def _ensure_row_major(self) -> np.ndarray:
        """Dense bit matrix of shape (num_bits, num_documents) as uint8.

        Built lazily after construction; this is the "bit-sliced" layout that
        makes the per-term AND a contiguous row operation.
        """
        if self._row_cache is None:
            if not self._columns:
                self._row_cache = np.zeros((self.num_bits, 0), dtype=np.uint8)
            else:
                cols = [col.to_bits() for col in self._columns]
                self._row_cache = np.stack(cols, axis=1)
        return self._row_cache

    def _packed_hits(self, positions: np.ndarray) -> np.ndarray:
        """``(n_terms, num_docs)`` verdicts from the packed bit-sliced rows.

        The zero-copy serving kernel: one gather pulls each term's ``eta``
        rows of packed ``uint64`` document-words out of the memory-mapped
        matrix, the AND-reduction happens on words (64 documents per
        operation), and only the final per-term verdicts are unpacked to a
        boolean row.
        """
        assert self._packed_rows is not None
        rows = self._packed_rows
        words = np.asarray(rows[positions[:, 0]])          # (n, words) gather copy
        for j in range(1, self.num_hashes):
            words &= rows[positions[:, j]]
        bits = np.unpackbits(
            np.ascontiguousarray(words).view(np.uint8), axis=1, bitorder="little"
        )
        return bits[:, : len(self._doc_names)].astype(bool)

    # -- query ------------------------------------------------------------------------

    def query_term(self, term: Term) -> QueryResult:
        """AND the ``eta`` rows the term hashes to; set bits are matches."""
        if not self._doc_names:
            return QueryResult(documents=frozenset(), filters_probed=0)
        if self._packed_rows is not None:
            return self.query_terms_batch([term])[0]
        matrix = self._ensure_row_major()
        positions = self._positions(term)
        row = matrix[positions[0]].copy()
        for pos in positions[1:]:
            row &= matrix[pos]
        # Probing cost is one row-AND per document per hash — report it as K
        # filter probes, the unit the paper's O(K) query complexity refers to.
        return QueryResult.from_mask(
            row.astype(bool), self._doc_names, filters_probed=len(self._doc_names)
        )

    def query_terms_batch(self, terms: Sequence[Term], method: str = "full") -> List[QueryResult]:
        """Native bit-sliced batch query: gather all terms' rows in one pass.

        One vectorised hash pass yields the ``(n_terms, eta)`` row indices;
        a single gather pulls every term's ``eta`` rows out of the bit-sliced
        matrix and one AND-reduction over the ``eta`` axis produces the
        per-term document bitmaps.  Large batches are chunked so the gather
        stays bounded at ``O(chunk x eta x num_documents)``.  ``method`` is
        validated for interface uniformity and then ignored (COBS has a
        single evaluation strategy).
        """
        check_query_method(method)
        terms = list(terms)
        if not terms:
            return []
        if not self._doc_names:
            return [QueryResult(documents=frozenset(), filters_probed=0) for _ in terms]
        matrix = None if self._packed_rows is not None else self._ensure_row_major()
        num_docs = len(self._doc_names)
        results: List[QueryResult] = []
        for chunk in iter_term_chunks(terms):
            positions = self._positions_matrix(list(chunk))
            hits = self._chunk_hits_sharded(positions, matrix)
            results.extend(
                QueryResult.from_mask(hits[t], self._doc_names, filters_probed=num_docs)
                for t in range(len(chunk))
            )
        return results

    def _chunk_hits(self, positions: np.ndarray, matrix: Optional[np.ndarray]) -> np.ndarray:
        """``(n_terms, num_docs)`` verdicts for one position chunk.

        The two gather kernels behind the batch query: *matrix* is the dense
        in-memory 0/1 layout (``None`` for a mapped index, which gathers
        packed ``uint64`` rows straight from the file instead).
        """
        if matrix is None:
            # Memory-mapped serving: gather packed uint64 rows straight
            # from the file and AND on words (64 documents at a time).
            return self._packed_hits(positions)
        # Incremental AND over the eta rows (the vector form of the
        # scalar query_term loop) keeps the peak intermediate at one
        # (chunk, num_documents) array instead of eta of them; the
        # matrix holds only 0/1 uint8 values, so AND them directly.
        hits = matrix[positions[:, 0]]                    # (chunk, num_documents)
        for j in range(1, self.num_hashes):
            hits &= matrix[positions[:, j]]
        return hits

    def _chunk_hits_sharded(
        self, positions: np.ndarray, matrix: Optional[np.ndarray]
    ) -> np.ndarray:
        """Term-sharded :meth:`_chunk_hits` over the executor pool.

        Each worker gathers (and, on the mapped path, unpacks) the rows of
        its own contiguous term range — numpy releases the GIL inside the
        gathers, and a memory-mapped matrix is shared read-only, so shards
        race on nothing.  Row order is preserved by concatenation, making
        the sharded result bit-identical to the inline gather.
        """
        ranges = shard_ranges(len(positions), get_num_threads(), get_min_terms_per_shard())
        if len(ranges) <= 1 or in_worker():
            return self._chunk_hits(positions, matrix)
        shards = parallel_map(
            lambda span: self._chunk_hits(positions[span[0] : span[1]], matrix), ranges
        )
        return np.concatenate(shards, axis=0)

    # -- persistence ---------------------------------------------------------------------

    def save_mmap(self, path) -> int:
        """Write the index in the zero-copy serving format (v2 container).

        The payload is the *bit-sliced* matrix packed into ``uint64`` words:
        row ``p`` holds bit ``p`` of every document's filter, documents
        packed 64 per word in little-endian bit order.  That is exactly the
        gather axis of the batched query engine, so a mapped index serves
        queries without unpacking anything but the final verdict rows.
        Returns the number of bytes written.
        """
        from repro.io.diskformat import write_container

        num_docs = len(self._doc_names)
        words_per_row = (num_docs + 63) // 64
        if self._packed_rows is not None:
            # A mapped index is already in the on-disk layout; re-save it
            # straight from the mapping (no columns exist to repack).
            payload = np.ascontiguousarray(self._packed_rows)
        elif num_docs:
            bits = np.stack([col.to_bits() for col in self._columns], axis=1)
            # packbits zero-pads to byte boundaries on its own; padding the
            # *packed* bytes out to whole words keeps the transient at the
            # byte-matrix size instead of a fully unpacked word-width one.
            packed = np.packbits(bits, axis=1, bitorder="little")
            padded = np.zeros((self.num_bits, words_per_row * 8), dtype=np.uint8)
            padded[:, : packed.shape[1]] = packed
            payload = padded.view(np.uint64)
        else:
            payload = np.zeros((self.num_bits, 0), dtype=np.uint64)
        header = {
            "kind": "cobs",
            "config": {
                "num_bits": self.num_bits,
                "num_hashes": self.num_hashes,
                "k": self.k,
                "seed": self.seed,
            },
            "document_names": list(self._doc_names),
        }
        return write_container(path, header, payload)

    @classmethod
    def open_mmap(cls, path, mode: str = "r") -> "CobsIndex":
        """Open an index written by :meth:`save_mmap` without loading it.

        Only the header is read; the packed bit-sliced matrix is memory-
        mapped and queries gather from it zero-copy.  Mapped COBS indexes
        are always read-only for inserts — the packed layout fixes the
        document count at save time — so :meth:`add_document` raises
        cleanly regardless of *mode* (``"c"`` still maps copy-on-write for
        callers who poke the matrix directly).

        Raises :class:`repro.io.diskformat.DiskFormatError` on malformed,
        truncated or version-mismatched files.
        """
        from repro.io.diskformat import (
            DiskFormatError,
            map_container_payload,
            read_container_header,
        )

        header, payload_offset = read_container_header(path)
        if header.get("kind") != "cobs":
            raise DiskFormatError(
                f"{path} holds a {header.get('kind')!r} index, not a COBS index"
            )
        cfg = header["config"]
        index = cls(
            num_bits=cfg["num_bits"],
            num_hashes=cfg["num_hashes"],
            k=cfg["k"],
            seed=cfg["seed"],
        )
        names = header["document_names"]
        words_per_row = (len(names) + 63) // 64
        shape = tuple(header["payload"]["shape"])
        if shape != (cfg["num_bits"], words_per_row):
            raise ValueError(
                f"{path} payload shape {shape} does not match the header "
                f"geometry {(cfg['num_bits'], words_per_row)}"
            )
        index._doc_names = list(names)
        index._doc_name_set = set(names)
        # Plain ndarray view over the mapping: same buffer and writeability,
        # without np.memmap's per-gather subclass overhead.
        index._packed_rows = np.asarray(
            map_container_payload(path, header, payload_offset, mode=mode)
        )
        return index

    # -- planner hooks -------------------------------------------------------------------

    @property
    def is_mapped(self) -> bool:
        """Whether this index serves from the on-disk packed matrix."""
        return self._packed_rows is not None

    def cost_hints(self) -> dict:
        """COBS priors: O(K) per term with a very small constant, no sparse path."""
        hints = super().cost_hints()
        per_doc_words = max((len(self._doc_names) + 63) // 64, 1)
        hints["batch-full"] = {
            "setup": 3e-5,
            "per_term": 2e-8 * self.num_hashes * per_doc_words,
            "per_term_selectivity": 5e-7,
        }
        return hints

    # -- accounting ----------------------------------------------------------------------

    def size_in_bytes(self) -> int:
        """Bit-matrix payload plus the document-name table."""
        if self._packed_rows is not None:
            matrix_bytes = int(self._packed_rows.nbytes)
        else:
            matrix_bytes = sum(col.nbytes for col in self._columns)
        name_bytes = sum(len(name.encode("utf-8")) for name in self._doc_names)
        return matrix_bytes + name_bytes

    def fill_ratio(self) -> float:
        """Mean fill ratio across the per-document filters."""
        if self._packed_rows is not None:
            from repro.bloom.bitarray import popcount_words

            if not self._doc_names:
                return 0.0
            # Padding columns beyond num_docs are zero, so the raw popcount
            # over the packed matrix is exact.
            return popcount_words(np.asarray(self._packed_rows)) / (
                self.num_bits * len(self._doc_names)
            )
        if not self._columns:
            return 0.0
        return sum(col.fill_ratio() for col in self._columns) / len(self._columns)

    def __repr__(self) -> str:
        return (
            f"CobsIndex(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"documents={len(self._doc_names)})"
        )
