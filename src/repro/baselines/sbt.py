"""Sequence Bloom Tree (Solomon & Kingsford, 2016).

A binary tree whose leaves are the per-document Bloom filters and whose
internal nodes are the bitwise OR (set union) of their children.  A query
walks from the root: if a node's filter does not contain the term no document
below it can (Bloom filters have no false negatives and unions only add bits),
so the subtree is pruned; otherwise both children are visited, and matching
leaves are reported.

Insertion follows the original greedy streaming strategy: walk down from the
root, at each internal node descending into the child whose filter is most
similar to the new document's filter (maximising sharing keeps internal nodes
sparse), and split the reached leaf into an internal node with two leaves.
Every node on the path absorbs the new filter by OR.

The best case is the paper's ``O(log K)`` per query; adversarial term
distributions degrade to ``O(K)`` because every leaf must be visited — the
sequential-traversal bottleneck the paper contrasts RAMBO against.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bloom.bloom_filter import BloomFilter, optimal_num_bits
from repro.core.base import MembershipIndex, QueryResult, Term
from repro.kmers.extraction import DEFAULT_K, KmerDocument


class _Node:
    """One SBT node: a Bloom filter plus tree links (leaf nodes carry a name)."""

    __slots__ = ("bloom", "left", "right", "name")

    def __init__(self, bloom: BloomFilter, name: Optional[str] = None) -> None:
        self.bloom = bloom
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.name = name

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class SequenceBloomTree(MembershipIndex):
    """Union-only Sequence Bloom Tree.

    Parameters
    ----------
    num_bits:
        Size of every node's Bloom filter (all nodes share it so unions are
        meaningful).
    num_hashes:
        Hash probes per term (the real SBT/HowDeSBT use 1; we default to 1).
    k:
        k-mer length for raw-sequence queries.
    seed:
        Hash seed shared by every node.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int = 1,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.k = k
        self.seed = seed
        self._root: Optional[_Node] = None
        self._doc_names: List[str] = []

    @classmethod
    def for_capacity(
        cls,
        terms_per_document: int,
        fp_rate: float = 0.01,
        num_hashes: int = 1,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> "SequenceBloomTree":
        """Size node filters for the expected per-document cardinality."""
        num_bits = optimal_num_bits(terms_per_document, fp_rate)
        return cls(num_bits=num_bits, num_hashes=num_hashes, k=k, seed=seed)

    @property
    def document_names(self) -> List[str]:
        return list(self._doc_names)

    # -- construction ------------------------------------------------------------------

    def _leaf_filter(self, document: KmerDocument) -> BloomFilter:
        # One vectorised hash pass over the whole term set (term-code arrays
        # digest without any per-key Python work).
        bloom = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        bloom.add_many(document.hash_keys())
        return bloom

    @staticmethod
    def _similarity(a: BloomFilter, b: BloomFilter) -> int:
        """Number of shared set bits — the greedy insertion heuristic."""
        return int(
            np.unpackbits((a.bits.words & b.bits.words).view(np.uint8)).sum()
        )

    def add_document(self, document: KmerDocument) -> None:
        """Greedy streaming insertion along the most-similar path."""
        if document.name in self._doc_names:
            raise ValueError(f"document {document.name!r} already indexed")
        self._doc_names.append(document.name)
        leaf_bloom = self._leaf_filter(document)
        new_leaf = _Node(leaf_bloom, name=document.name)
        if self._root is None:
            self._root = new_leaf
            return
        # Walk down, ORing the new filter into every visited internal node.
        parent: Optional[_Node] = None
        node = self._root
        while not node.is_leaf:
            node.bloom.union_inplace(leaf_bloom)
            assert node.left is not None and node.right is not None
            left_sim = self._similarity(node.left.bloom, leaf_bloom)
            right_sim = self._similarity(node.right.bloom, leaf_bloom)
            parent = node
            node = node.left if left_sim >= right_sim else node.right
        # Split the reached leaf: it becomes a child of a fresh internal node.
        internal = _Node(node.bloom.union(leaf_bloom))
        internal.left = node
        internal.right = new_leaf
        if parent is None:
            self._root = internal
        elif parent.left is node:
            parent.left = internal
        else:
            parent.right = internal

    # -- query ---------------------------------------------------------------------------

    def query_term(self, term: Term) -> QueryResult:
        """Depth-first traversal pruning subtrees whose union filter misses the term."""
        if self._root is None:
            return QueryResult(documents=frozenset(), filters_probed=0)
        matches: List[str] = []
        probes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            probes += 1
            if not node.bloom.contains(term):
                continue
            if node.is_leaf:
                assert node.name is not None
                matches.append(node.name)
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)
        return QueryResult(documents=frozenset(matches), filters_probed=probes)

    # -- accounting -------------------------------------------------------------------------

    def _nodes(self) -> List[_Node]:
        if self._root is None:
            return []
        out: List[_Node] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            out.append(node)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.extend((node.left, node.right))
        return out

    def num_nodes(self) -> int:
        """Total number of tree nodes (2K - 1 for K documents)."""
        return len(self._nodes())

    def height(self) -> int:
        """Height of the tree (0 for a single leaf); log2(K) when balanced."""

        def depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root)

    def size_in_bytes(self) -> int:
        """Sum of every node filter plus the name table.

        This is the memory overhead the paper attributes to SBTs: roughly one
        full-size Bloom filter per node, ~2K filters in total.
        """
        node_bytes = sum(node.bloom.size_in_bytes() for node in self._nodes())
        name_bytes = sum(len(name.encode("utf-8")) for name in self._doc_names)
        return node_bytes + name_bytes

    def __repr__(self) -> str:
        return (
            f"SequenceBloomTree(num_bits={self.num_bits}, documents={len(self._doc_names)}, "
            f"nodes={self.num_nodes()})"
        )
