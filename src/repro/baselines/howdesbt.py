"""HowDeSBT (Harris & Medvedev, 2019): determined/how bit-vectors.

HowDeSBT stores, at every internal node, which bit positions are *determined*
(all leaves below agree on the bit's value) and, for determined positions,
*how* they are determined (the agreed value).  During a query:

* a probe position determined-to-0 anywhere on the path prunes the subtree —
  no descendant can contain the term;
* once every probe position has been determined-to-1, the whole subtree is
  reported without visiting it;
* only positions still undetermined are pushed down to the children.

This gives the same answers as the plain SBT while inspecting far fewer
nodes, which is why it is the strongest tree baseline in Table 2.  The real
implementation compresses the vectors with RRR; the paper's comparison (and
ours) is about traversal behaviour and uncompressed sizes, so we keep plain
bit arrays (the paper likewise leaves RAMBO's bit-vectors uncompressed).

Like our SSBT, the tree is built as a batch and rebuilt lazily after updates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.bloom.bitarray import BitArray
from repro.bloom.bloom_filter import _normalise_key, optimal_num_bits
from repro.core.base import MembershipIndex, QueryResult, Term
from repro.hashing.murmur3 import double_hashes, double_hashes_batch
from repro.kmers.extraction import DEFAULT_K, KmerDocument


class _HowDeNode:
    """One HowDeSBT node: determined/how vectors, children, leaf names."""

    __slots__ = ("determined", "how", "left", "right", "names")

    def __init__(self, determined: BitArray, how: BitArray, names: List[str]) -> None:
        self.determined = determined
        self.how = how
        self.left: Optional["_HowDeNode"] = None
        self.right: Optional["_HowDeNode"] = None
        self.names = names

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class HowDeSbt(MembershipIndex):
    """Batch-built HowDeSBT.

    Parameters
    ----------
    num_bits:
        Size of every node vector (HowDeSBT supports only 1 hash function in
        the original implementation; we keep that default).
    num_hashes:
        Hash probes per term.
    k:
        k-mer length for raw-sequence queries.
    seed:
        Hash seed shared by every node.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int = 1,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.k = k
        self.seed = seed
        self._documents: List[KmerDocument] = []
        self._root: Optional[_HowDeNode] = None
        self._dirty = False

    @classmethod
    def for_capacity(
        cls,
        terms_per_document: int,
        fp_rate: float = 0.01,
        num_hashes: int = 1,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> "HowDeSbt":
        """Size node vectors for the expected per-document cardinality."""
        num_bits = optimal_num_bits(terms_per_document, fp_rate)
        return cls(num_bits=num_bits, num_hashes=num_hashes, k=k, seed=seed)

    @property
    def document_names(self) -> List[str]:
        return [doc.name for doc in self._documents]

    # -- construction ----------------------------------------------------------------------

    def add_document(self, document: KmerDocument) -> None:
        """Buffer the document; the tree is rebuilt lazily before the next query."""
        if any(doc.name == document.name for doc in self._documents):
            raise ValueError(f"document {document.name!r} already indexed")
        self._documents.append(document)
        self._dirty = True

    def _positions(self, term: Term) -> List[int]:
        return double_hashes(_normalise_key(term), self.num_hashes, self.num_bits, self.seed)

    def _leaf_bits(self, document: KmerDocument) -> BitArray:
        # Bulk leaf build: one batched hash pass, one word-OR scatter.
        bits = BitArray(self.num_bits)
        if len(document):
            bits.set_many(self._positions_matrix(document.hash_keys()).ravel())
        return bits

    def _positions_matrix(self, terms) -> "np.ndarray":
        # Key normalisation is centralised in double_hashes_batch.
        return double_hashes_batch(terms, self.num_hashes, self.num_bits, self.seed)

    def _build(self) -> None:
        """Bottom-up construction of union/intersection, then det/how vectors."""
        if not self._documents:
            self._root = None
            self._dirty = False
            return

        # First build (union, intersection) per subtree, pairing adjacent nodes.
        Level = List[Tuple[BitArray, BitArray, List[str], Optional[_HowDeNode], Optional[_HowDeNode]]]
        level: Level = []
        for doc in self._documents:
            bits = self._leaf_bits(doc)
            level.append((bits, bits.copy(), [doc.name], None, None))

        def make_node(
            union: BitArray,
            inter: BitArray,
            names: List[str],
            left: Optional[_HowDeNode],
            right: Optional[_HowDeNode],
        ) -> _HowDeNode:
            # Determined positions: all-0 (not in union) or all-1 (in intersection).
            determined = inter | ~union
            node = _HowDeNode(determined=determined, how=inter.copy(), names=names)
            node.left = left
            node.right = right
            return node

        while len(level) > 1:
            next_level: Level = []
            for i in range(0, len(level) - 1, 2):
                lu, li, lnames, ll, lr = level[i]
                ru, ri, rnames, rl, rr = level[i + 1]
                left_node = make_node(lu, li, lnames, ll, lr)
                right_node = make_node(ru, ri, rnames, rl, rr)
                union = lu | ru
                inter = li & ri
                next_level.append((union, inter, lnames + rnames, left_node, right_node))
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
        union, inter, names, left, right = level[0]
        self._root = make_node(union, inter, names, left, right)
        self._dirty = False

    def rebuild(self) -> None:
        """Force a rebuild (normally triggered lazily by the first query)."""
        self._build()

    # -- query ------------------------------------------------------------------------------

    def query_term(self, term: Term) -> QueryResult:
        """Traversal resolving probe positions through the determined/how vectors."""
        if self._dirty or (self._root is None and self._documents):
            self._build()
        if self._root is None:
            return QueryResult(documents=frozenset(), filters_probed=0)
        positions = self._positions(term)
        matches: List[str] = []
        probes = 0
        stack: List[tuple] = [(self._root, positions)]
        while stack:
            node, remaining = stack.pop()
            probes += 1
            unresolved = []
            pruned = False
            for pos in remaining:
                if node.determined.get(pos):
                    if not node.how.get(pos):
                        pruned = True  # determined to 0: absent below this node
                        break
                    # determined to 1: present in every descendant; resolved.
                else:
                    unresolved.append(pos)
            if pruned:
                continue
            if not unresolved:
                matches.extend(node.names)
                continue
            if node.is_leaf:
                # A leaf determines every position; unresolved here cannot happen,
                # but guard against it to avoid over-reporting.
                continue
            assert node.left is not None and node.right is not None
            stack.append((node.left, unresolved))
            stack.append((node.right, unresolved))
        return QueryResult(documents=frozenset(matches), filters_probed=probes)

    # -- accounting ----------------------------------------------------------------------------

    def _nodes(self) -> List[_HowDeNode]:
        if self._dirty or (self._root is None and self._documents):
            self._build()
        if self._root is None:
            return []
        out: List[_HowDeNode] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            out.append(node)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.extend((node.left, node.right))
        return out

    def num_nodes(self) -> int:
        """Total number of tree nodes."""
        return len(self._nodes())

    def size_in_bytes(self) -> int:
        """Two vectors per node plus the name table (uncompressed)."""
        node_bytes = sum(node.determined.nbytes + node.how.nbytes for node in self._nodes())
        name_bytes = sum(len(doc.name.encode("utf-8")) for doc in self._documents)
        return node_bytes + name_bytes

    def __repr__(self) -> str:
        return f"HowDeSbt(num_bits={self.num_bits}, documents={len(self._documents)})"
