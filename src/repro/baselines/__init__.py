"""Baseline index structures the paper compares against.

* :class:`CobsIndex` — BIGSI/COBS-style bit-sliced array of Bloom filters
  (one filter per document, queried row-wise across all documents).
* :class:`SequenceBloomTree` — the SBT of Solomon & Kingsford: a binary tree
  of Bloom filters where each internal node is the union of its children.
* :class:`SplitSequenceBloomTree` — SSBT: each node stores a *similarity*
  (all-children) filter and a *remainder* filter, enabling early pruning.
* :class:`HowDeSbt` — HowDeSBT: *determined*/*how* bit-vectors per node, the
  state of the art among the tree methods the paper benchmarks.
* :class:`InvertedIndex` — exact term → documents mapping; the ground truth
  every false-positive measurement is computed against.

All of them implement :class:`repro.core.base.MembershipIndex`, so the
experiment harness and the benchmarks drive them interchangeably with RAMBO.
"""

from repro.baselines.cobs import CobsIndex
from repro.baselines.sbt import SequenceBloomTree
from repro.baselines.ssbt import SplitSequenceBloomTree
from repro.baselines.howdesbt import HowDeSbt
from repro.baselines.inverted_index import InvertedIndex

__all__ = [
    "CobsIndex",
    "SequenceBloomTree",
    "SplitSequenceBloomTree",
    "HowDeSbt",
    "InvertedIndex",
]
