"""Split Sequence Bloom Tree (Solomon & Kingsford, 2017).

SSBT refines the SBT by storing two filters per internal node:

* the **similarity** filter — bits set in *every* descendant leaf; and
* the **remainder** filter — bits set in *some but not all* descendants
  (the union minus the similarity bits).

During a query, a term position found in the similarity filter is guaranteed
present in every leaf below, so the whole subtree can be reported without
visiting it; a position absent from both filters prunes the subtree.  Only
ambiguous nodes recurse, which is where SSBT's speedup over plain SBT comes
from.

The tree is built as a batch (the usual offline SBT-family workflow): the
leaves are clustered bottom-up by pairing adjacent documents, which keeps the
tree balanced.  Adding a document after a query simply marks the tree dirty
and it is rebuilt lazily on the next query — mirroring the "rebuild to update"
operational reality of the SBT family that the paper contrasts with RAMBO's
cheap streaming updates.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bloom.bitarray import BitArray
from repro.bloom.bloom_filter import BloomFilter, _normalise_key, optimal_num_bits
from repro.core.base import MembershipIndex, QueryResult, Term
from repro.hashing.murmur3 import double_hashes, double_hashes_batch
from repro.kmers.extraction import DEFAULT_K, KmerDocument


class _SplitNode:
    """One SSBT node: similarity bits, remainder bits, children and leaf names."""

    __slots__ = ("sim", "rem", "left", "right", "names")

    def __init__(self, sim: BitArray, rem: BitArray, names: List[str]) -> None:
        self.sim = sim
        self.rem = rem
        self.left: Optional["_SplitNode"] = None
        self.right: Optional["_SplitNode"] = None
        self.names = names

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class SplitSequenceBloomTree(MembershipIndex):
    """Batch-built Split Sequence Bloom Tree.

    Parameters
    ----------
    num_bits:
        Size of every node filter.
    num_hashes:
        Hash probes per term (4 in the paper's SSBT configuration).
    k:
        k-mer length for raw-sequence queries.
    seed:
        Hash seed shared by every node.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int = 4,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.k = k
        self.seed = seed
        self._documents: List[KmerDocument] = []
        self._root: Optional[_SplitNode] = None
        self._dirty = False

    @classmethod
    def for_capacity(
        cls,
        terms_per_document: int,
        fp_rate: float = 0.01,
        num_hashes: int = 4,
        k: int = DEFAULT_K,
        seed: int = 0,
    ) -> "SplitSequenceBloomTree":
        """Size node filters for the expected per-document cardinality."""
        num_bits = optimal_num_bits(terms_per_document, fp_rate)
        return cls(num_bits=num_bits, num_hashes=num_hashes, k=k, seed=seed)

    @property
    def document_names(self) -> List[str]:
        return [doc.name for doc in self._documents]

    # -- construction -------------------------------------------------------------------

    def add_document(self, document: KmerDocument) -> None:
        """Buffer the document; the tree is rebuilt lazily before the next query."""
        if any(doc.name == document.name for doc in self._documents):
            raise ValueError(f"document {document.name!r} already indexed")
        self._documents.append(document)
        self._dirty = True

    def _positions(self, term: Term) -> List[int]:
        return double_hashes(_normalise_key(term), self.num_hashes, self.num_bits, self.seed)

    def _leaf_bits(self, document: KmerDocument) -> BitArray:
        # Bulk leaf build: one batched hash pass, one word-OR scatter.
        bits = BitArray(self.num_bits)
        if len(document):
            bits.set_many(self._positions_matrix(document.hash_keys()).ravel())
        return bits

    def _positions_matrix(self, terms) -> "np.ndarray":
        # Key normalisation is centralised in double_hashes_batch.
        return double_hashes_batch(terms, self.num_hashes, self.num_bits, self.seed)

    def _build(self) -> None:
        """Bottom-up balanced construction by pairing adjacent subtrees."""
        if not self._documents:
            self._root = None
            self._dirty = False
            return
        level: List[_SplitNode] = []
        for doc in self._documents:
            bits = self._leaf_bits(doc)
            level.append(_SplitNode(sim=bits, rem=BitArray(self.num_bits), names=[doc.name]))
        while len(level) > 1:
            next_level: List[_SplitNode] = []
            for i in range(0, len(level) - 1, 2):
                left, right = level[i], level[i + 1]
                left_union = left.sim | left.rem
                right_union = right.sim | right.rem
                sim = left.sim & right.sim
                rem = (left_union | right_union) ^ sim
                parent = _SplitNode(sim=sim, rem=rem, names=left.names + right.names)
                parent.left = left
                parent.right = right
                next_level.append(parent)
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
        self._root = level[0]
        self._dirty = False

    def rebuild(self) -> None:
        """Force a rebuild (normally triggered lazily by the first query)."""
        self._build()

    # -- query ---------------------------------------------------------------------------

    def query_term(self, term: Term) -> QueryResult:
        """Recursive query using the similarity filter to short-circuit subtrees."""
        if self._dirty or (self._root is None and self._documents):
            self._build()
        if self._root is None:
            return QueryResult(documents=frozenset(), filters_probed=0)
        positions = self._positions(term)
        matches: List[str] = []
        probes = 0
        stack: List[tuple] = [(self._root, positions)]
        while stack:
            node, remaining = stack.pop()
            probes += 1
            still_remaining = []
            pruned = False
            for pos in remaining:
                if node.sim.get(pos):
                    continue  # resolved: present in every descendant
                if node.rem.get(pos):
                    still_remaining.append(pos)  # ambiguous below this node
                else:
                    pruned = True  # absent from the whole subtree
                    break
            if pruned:
                continue
            if not still_remaining:
                # Every position resolved positively: the entire subtree matches.
                matches.extend(node.names)
                continue
            if node.is_leaf:
                # Unresolved positions at a leaf mean the leaf does not contain them.
                continue
            assert node.left is not None and node.right is not None
            stack.append((node.left, still_remaining))
            stack.append((node.right, still_remaining))
        return QueryResult(documents=frozenset(matches), filters_probed=probes)

    # -- accounting -------------------------------------------------------------------------

    def _nodes(self) -> List[_SplitNode]:
        if self._dirty or (self._root is None and self._documents):
            self._build()
        if self._root is None:
            return []
        out: List[_SplitNode] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            out.append(node)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.extend((node.left, node.right))
        return out

    def num_nodes(self) -> int:
        """Total number of tree nodes."""
        return len(self._nodes())

    def size_in_bytes(self) -> int:
        """Two filters per node plus the name table."""
        node_bytes = sum(node.sim.nbytes + node.rem.nbytes for node in self._nodes())
        name_bytes = sum(len(doc.name.encode("utf-8")) for doc in self._documents)
        return node_bytes + name_bytes

    def __repr__(self) -> str:
        return (
            f"SplitSequenceBloomTree(num_bits={self.num_bits}, "
            f"documents={len(self._documents)})"
        )
