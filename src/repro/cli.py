"""Command-line interface: build, query and inspect RAMBO indexes on disk.

The original RAMBO/COBS tools are driven from the shell over directories of
sequence files; this CLI mirrors that workflow on top of the library:

``repro-rambo build``
    Index a directory of ``.fasta`` / ``.fastq`` / ``.mcc`` (McCortex-lite)
    files into a serialized RAMBO index.  Documents stream through the
    batched insert pipeline in bounded-memory chunks (``--batch-size``);
    ``--format mmap`` writes the zero-copy serving container instead of the
    load-into-memory v1 format.

``repro-rambo query``
    Open an index (auto-detecting v1 vs mmap format) and query any number
    of terms and/or sequences in one invocation; prints one line per query
    with the matching document names.  All terms are answered through the
    vectorised batch engine; mmap indexes are probed directly in the file.

``repro-rambo info``
    Print the configuration, size breakdown and fill statistics of an index.

``repro-rambo fold``
    Load an index, fold it over N times and write the smaller index back out.

The CLI is intentionally a thin shell over the public API so that every code
path it exercises is also reachable (and tested) as a library call.
"""

from __future__ import annotations

import argparse
import sys
from itertools import islice
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.config import configure_from_sample
from repro.core.executor import get_num_threads, num_threads
from repro.core.folding import fold_rambo
from repro.core.rambo import Rambo, RamboConfig
from repro.core.serialization import open_index, save_index
from repro.io.diskformat import detect_format
from repro.io.fasta import read_fasta
from repro.io.fastq import read_fastq
from repro.io.mccortex import read_mccortex
from repro.kmers.extraction import DEFAULT_K, document_from_sequences
from repro.utils.memory import human_bytes
from repro.utils.timing import Timer

_SEQUENCE_SUFFIXES = {".fasta", ".fa", ".fna", ".fastq", ".fq", ".mcc"}


def _document_paths(input_dir: Path) -> List[Path]:
    """Recognised sequence files under *input_dir*, in sorted order."""
    paths = [
        path
        for path in sorted(input_dir.iterdir())
        if path.suffix.lower() in _SEQUENCE_SUFFIXES
    ]
    if not paths:
        raise SystemExit(f"no sequence files (*.fasta, *.fastq, *.mcc) found in {input_dir}")
    return paths


def _parse_document(path: Path, k: int, min_count: int, canonical: bool = False):
    """Parse one sequence file into an index-ready document.

    Every reader hands back a numpy term-code array — sequence files run
    through the vectorised extraction kernel, McCortex files store codes
    directly — so documents flow from disk into the batched hash/scatter
    pipeline without a Python-int round-trip.  McCortex input is already
    extracted (and canonicalised upstream, if at all), so ``canonical`` and
    ``min_count`` only apply to FASTA/FASTQ input.
    """
    suffix = path.suffix.lower()
    name = path.stem
    if suffix == ".mcc":
        return read_mccortex(path).to_document()
    if suffix in (".fastq", ".fq"):
        sequences = [record.sequence for record in read_fastq(path)]
        return document_from_sequences(
            name, sequences, k=k, canonical=canonical, min_count=min_count,
            source_format="fastq",
        )
    sequences = [record.sequence for record in read_fasta(path)]
    return document_from_sequences(
        name, sequences, k=k, canonical=canonical, source_format="fasta"
    )


def _cmd_build(args: argparse.Namespace) -> int:
    input_dir = Path(args.input_dir)
    if not input_dir.is_dir():
        raise SystemExit(f"input directory {input_dir} does not exist")
    if args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    paths = _document_paths(input_dir)

    # Parse lazily and insert in bounded batches so only one batch of
    # documents is ever resident — the streaming construction the paper's
    # I/O-bound build relies on.  Parsing and inserting are timed
    # separately: the "built in" figure must stay a pure index-construction
    # observation (Table 2's unit), not parse I/O.
    parse_seconds = 0.0
    build_seconds = 0.0

    def next_batch(doc_iter) -> list:
        nonlocal parse_seconds
        with Timer() as parse_timer:
            batch = list(islice(doc_iter, args.batch_size))
        parse_seconds += parse_timer.wall_seconds
        return batch

    doc_iter = (
        _parse_document(
            path,
            k=args.kmer_size,
            min_count=args.min_kmer_count,
            canonical=args.canonical,
        )
        for path in paths
    )
    first_batch = next_batch(doc_iter)
    if args.partitions and args.repetitions and args.bfu_bits:
        config = RamboConfig(
            num_partitions=args.partitions,
            repetitions=args.repetitions,
            bfu_bits=args.bfu_bits,
            bfu_hashes=args.bfu_hashes,
            k=args.kmer_size,
            seed=args.seed,
        )
    else:
        # Auto-configuration: B, R and the BFU size are chosen for the
        # *full* file count; only the per-document cardinality is pooled
        # from the first batch (the paper's tiny-fraction estimate).
        config = configure_from_sample(
            first_batch,
            fp_rate=args.fp_rate,
            num_partitions=args.partitions or None,
            repetitions=args.repetitions or None,
            bfu_hashes=args.bfu_hashes,
            k=args.kmer_size,
            seed=args.seed,
            num_documents=len(paths),
        )
    index = Rambo(config)
    num_documents = 0
    batch = first_batch
    # With an effective thread count above one (--threads or REPRO_THREADS)
    # each batch's insert is sharded across the executor pool; the sharded
    # path is bit-identical to the inline one, so the written index does
    # not depend on the thread count.
    parallel_insert = get_num_threads() > 1
    while batch:
        with Timer() as build_timer:
            index.add_documents(batch, parallel=parallel_insert)
        build_seconds += build_timer.wall_seconds
        num_documents += len(batch)
        batch = next_batch(doc_iter)
    print(f"parsed {num_documents} documents from {input_dir} in {parse_seconds:.2f}s")
    print(
        f"config: B={config.num_partitions} R={config.repetitions} "
        f"bfu_bits={config.bfu_bits} eta={config.bfu_hashes} k={config.k}"
    )
    written = save_index(index, args.output, format=args.format)
    print(
        f"built in {build_seconds:.2f}s, wrote {human_bytes(written)} to {args.output} "
        f"({args.format} format)"
    )
    return 0


def _normalise_term(term: str, k: int, canonical: bool = False):
    """Encode DNA terms the way the build path stores them.

    Sequence files are indexed as 2-bit integer k-mer codes; a term that looks
    like a k-length DNA string is converted to that code so CLI queries hit
    the same hash inputs.  With ``canonical`` the code is canonicalised,
    matching an index built with ``--canonical``.  Anything else (words,
    non-ACGT strings) is queried verbatim.
    """
    if len(term) == k and all(base in "ACGTacgt" for base in term):
        from repro.kmers.encoding import canonical_int, kmer_to_int

        code = kmer_to_int(term)
        return canonical_int(code, k) if canonical else code
    return term


def _cmd_query(args: argparse.Namespace) -> int:
    # Auto-detects the file format: v1 indexes are loaded into memory, mmap
    # indexes are served zero-copy straight from the file.
    index = open_index(args.index)
    method = "sparse" if args.sparse else "full"

    queries: List[str] = list(args.terms)
    sequences: List[str] = [s for s in (args.sequence or []) if s]
    if not queries and not sequences:
        raise SystemExit("nothing to query: pass terms and/or --sequence")
    # Each sequence is a conjunctive batch over its k-mers, answered by the
    # vectorised query_terms engine; one output line per sequence, in order.
    for sequence in sequences:
        try:
            result = index.query_sequence(sequence, canonical=args.canonical, method=method)
        except ValueError as exc:
            raise SystemExit(f"bad --sequence value: {exc}") from exc
        matches = ",".join(sorted(result.documents)) or "-"
        print(f"sequence\t{matches}\t{result.filters_probed}")
    if queries:
        # All terms go through the batched engine in one call.
        results = index.query_terms_batch(
            [_normalise_term(term, index.k, canonical=args.canonical) for term in queries],
            method=method,
        )
        for term, result in zip(queries, results):
            matches = ",".join(sorted(result.documents)) or "-"
            print(f"{term}\t{matches}\t{result.filters_probed}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    file_format = detect_format(args.index)
    index = open_index(args.index)
    config = index.config
    print(f"index file      : {args.index}")
    print(f"format          : {file_format}" + (" (memory-mapped)" if index.is_mapped else ""))
    print(f"documents       : {index.num_documents}")
    print(f"partitions (B)  : {index.num_partitions}")
    print(f"repetitions (R) : {index.repetitions}")
    print(f"BFU bits        : {config.bfu_bits} ({config.bfu_hashes} hashes)")
    print(f"k-mer length    : {config.k}")
    for component, size in index.size_components().items():
        print(f"size[{component:<11}]: {human_bytes(size)}")
    print(f"size[total      ]: {human_bytes(index.size_in_bytes())}")
    ratios = [r for row in index.fill_ratios() for r in row]
    if ratios:
        print(f"BFU fill ratio  : min={min(ratios):.3f} mean={sum(ratios)/len(ratios):.3f} "
              f"max={max(ratios):.3f}")
    return 0


def _cmd_fold(args: argparse.Namespace) -> int:
    # The folded copy is written back in the input's format (folding a
    # mapped index materialises in-memory BFUs, so both outputs are legal).
    file_format = detect_format(args.index)
    index = open_index(args.index)
    before = index.size_in_bytes()
    folded = fold_rambo(index, args.folds)
    written = save_index(folded, args.output, format=file_format)
    print(
        f"folded {args.folds}x: B {index.num_partitions} -> {folded.num_partitions}, "
        f"size {human_bytes(before)} -> {human_bytes(folded.size_in_bytes())}, "
        f"wrote {human_bytes(written)} to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-rambo",
        description="Build and query RAMBO (Repeated And Merged Bloom Filter) indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="index a directory of sequence files")
    build.add_argument("input_dir", help="directory of .fasta/.fastq/.mcc files")
    build.add_argument("output", help="path of the index file to write")
    build.add_argument("--kmer-size", type=int, default=DEFAULT_K, help="k-mer length (default 31)")
    build.add_argument("--fp-rate", type=float, default=0.01, help="target false-positive rate")
    build.add_argument("--partitions", type=int, default=0, help="override B (0 = auto)")
    build.add_argument("--repetitions", type=int, default=0, help="override R (0 = auto)")
    build.add_argument("--bfu-bits", type=int, default=0, help="override BFU size in bits (0 = auto)")
    build.add_argument("--bfu-hashes", type=int, default=2, help="hash probes per BFU (default 2)")
    build.add_argument(
        "--min-count", "--min-kmer-count", dest="min_kmer_count", type=int, default=1,
        help="error-filter threshold applied to FASTQ input (default 1 = keep all); "
             "--min-kmer-count is accepted as an alias",
    )
    build.add_argument(
        "--canonical", action="store_true",
        help="index canonical (strand-neutral) k-mers: each window is stored "
             "as min(kmer, reverse_complement); query with --canonical too",
    )
    build.add_argument(
        "--batch-size", type=int, default=256,
        help="documents per streamed insert batch; bounds construction memory "
             "(default 256; auto-configuration samples the first batch)",
    )
    build.add_argument("--seed", type=int, default=0, help="hash seed")
    build.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="worker threads for construction (default: REPRO_THREADS, else "
             "all cores); the built index is bit-identical for every N",
    )
    build.add_argument(
        "--format", choices=("v1", "mmap"), default="v1",
        help="index file format: v1 loads fully into memory on open; mmap "
             "serves queries zero-copy via memory mapping (default v1). "
             "'query' and 'info' auto-detect the format.",
    )
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="query terms and/or sequences against an index")
    query.add_argument("index", help="index file written by 'build'")
    query.add_argument(
        "terms", nargs="*",
        help="terms (k-mers or words) to query; all terms are answered in one vectorised batch",
    )
    query.add_argument(
        "--sequence", action="append", default=[], metavar="SEQ",
        help="query a whole sequence (conjunction of its k-mers); repeatable",
    )
    query.add_argument("--sparse", action="store_true", help="use the RAMBO+ sparse evaluation")
    query.add_argument(
        "--canonical", action="store_true",
        help="canonicalise query k-mers (use against an index built with --canonical)",
    )
    query.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="worker threads for batch query evaluation (default: REPRO_THREADS, "
             "else all cores); results are bit-identical for every N",
    )
    query.set_defaults(func=_cmd_query)

    info = sub.add_parser("info", help="print index configuration and size breakdown")
    info.add_argument("index", help="index file written by 'build'")
    info.set_defaults(func=_cmd_info)

    fold = sub.add_parser("fold", help="fold an index over to shrink it")
    fold.add_argument("index", help="index file written by 'build'")
    fold.add_argument("output", help="path of the folded index file to write")
    fold.add_argument("--folds", type=int, default=1, help="number of fold-over steps (default 1)")
    fold.set_defaults(func=_cmd_fold)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    threads = getattr(args, "threads", None)
    if threads is not None:
        if threads < 1:
            raise SystemExit(f"--threads must be >= 1, got {threads}")
        # Scoped so a --threads choice cannot leak into later library calls
        # when main() is driven programmatically (tests, notebooks).
        with num_threads(threads):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
