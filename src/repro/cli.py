"""Command-line interface: build, query and inspect RAMBO indexes on disk.

The original RAMBO/COBS tools are driven from the shell over directories of
sequence files; this CLI mirrors that workflow on top of the library:

``repro-rambo build``
    Index a directory of ``.fasta`` / ``.fastq`` / ``.mcc`` (McCortex-lite)
    files into a serialized RAMBO index.  Documents stream through the
    batched insert pipeline in bounded-memory chunks (``--batch-size``);
    ``--format mmap`` writes the zero-copy serving container instead of the
    load-into-memory v1 format.

``repro-rambo query``
    Open an index (auto-detecting v1 vs mmap format) and query any number
    of terms and/or sequences in one invocation; prints one line per query
    with the matching document names.  All terms are answered through the
    vectorised batch engine; mmap indexes are probed directly in the file.

``repro-rambo info``
    Print the configuration, size breakdown and fill statistics of an index;
    ``--json`` emits the same record machine-readably (the exact schema the
    serve command's ``/stats`` endpoint embeds).

``repro-rambo fold``
    Load an index, fold it over N times and write the smaller index back out.

``repro-rambo serve``
    Hold an index open and answer concurrent clients over JSON/HTTP: many
    clients' terms coalesce into one batched engine call per tick, hot terms
    are answered from an LRU cache, and ``POST /rotate`` swaps in a rebuilt
    index atomically without dropping in-flight queries.

``repro-rambo query --server URL``
    Send the terms to a running ``serve`` process instead of opening an
    index file locally; output format is identical to the local path.

``repro-rambo ingest``
    Stream a directory of sequence files into a running ``serve --wal``
    process: each batch is appended durably (WAL-fsynced before the
    acknowledgement) and becomes queryable immediately via the delta
    overlay; ``--compact`` folds the delta into a new snapshot generation
    afterwards.

``repro-rambo calibrate``
    Micro-measure the index's evaluation strategies on this machine and
    write the fitted cost model next to the artifact (``<index>.cost.json``)
    — the constants ``query --backend auto`` and the serve planner use to
    pick full vs sparse per batch.  ``--from-json`` fits from a
    ``REPRO_BENCH_JSON`` stream (the bench_ablation timing grid) instead of
    measuring.

The CLI is intentionally a thin shell over the public API so that every code
path it exercises is also reachable (and tested) as a library call.
"""

from __future__ import annotations

import argparse
import json
import sys
from itertools import islice
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.config import configure_from_sample
from repro.core.executor import get_num_threads, num_threads
from repro.core.folding import fold_rambo
from repro.core.rambo import Rambo, RamboConfig
from repro.core.serialization import describe_index, open_index, save_index
from repro.io.diskformat import detect_format
from repro.io.fasta import read_fasta
from repro.io.fastq import read_fastq
from repro.io.mccortex import read_mccortex
from repro.kmers.extraction import DEFAULT_K, document_from_sequences, normalise_query_term
from repro.utils.memory import human_bytes
from repro.utils.timing import Timer

_SEQUENCE_SUFFIXES = {".fasta", ".fa", ".fna", ".fastq", ".fq", ".mcc"}


def _document_paths(input_dir: Path) -> List[Path]:
    """Recognised sequence files under *input_dir*, in sorted order."""
    paths = [
        path
        for path in sorted(input_dir.iterdir())
        if path.suffix.lower() in _SEQUENCE_SUFFIXES
    ]
    if not paths:
        raise SystemExit(f"no sequence files (*.fasta, *.fastq, *.mcc) found in {input_dir}")
    return paths


def _parse_document(path: Path, k: int, min_count: int, canonical: bool = False):
    """Parse one sequence file into an index-ready document.

    Every reader hands back a numpy term-code array — sequence files run
    through the vectorised extraction kernel, McCortex files store codes
    directly — so documents flow from disk into the batched hash/scatter
    pipeline without a Python-int round-trip.  McCortex input is already
    extracted (and canonicalised upstream, if at all), so ``canonical`` and
    ``min_count`` only apply to FASTA/FASTQ input.
    """
    suffix = path.suffix.lower()
    name = path.stem
    if suffix == ".mcc":
        return read_mccortex(path).to_document()
    if suffix in (".fastq", ".fq"):
        sequences = [record.sequence for record in read_fastq(path)]
        return document_from_sequences(
            name, sequences, k=k, canonical=canonical, min_count=min_count,
            source_format="fastq",
        )
    sequences = [record.sequence for record in read_fasta(path)]
    return document_from_sequences(
        name, sequences, k=k, canonical=canonical, source_format="fasta"
    )


def _cmd_build(args: argparse.Namespace) -> int:
    input_dir = Path(args.input_dir)
    if not input_dir.is_dir():
        raise SystemExit(f"input directory {input_dir} does not exist")
    if args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    paths = _document_paths(input_dir)

    # Parse lazily and insert in bounded batches so only one batch of
    # documents is ever resident — the streaming construction the paper's
    # I/O-bound build relies on.  Parsing and inserting are timed
    # separately: the "built in" figure must stay a pure index-construction
    # observation (Table 2's unit), not parse I/O.
    parse_seconds = 0.0
    build_seconds = 0.0

    def next_batch(doc_iter) -> list:
        nonlocal parse_seconds
        with Timer() as parse_timer:
            batch = list(islice(doc_iter, args.batch_size))
        parse_seconds += parse_timer.wall_seconds
        return batch

    doc_iter = (
        _parse_document(
            path,
            k=args.kmer_size,
            min_count=args.min_kmer_count,
            canonical=args.canonical,
        )
        for path in paths
    )
    first_batch = next_batch(doc_iter)
    if args.partitions and args.repetitions and args.bfu_bits:
        config = RamboConfig(
            num_partitions=args.partitions,
            repetitions=args.repetitions,
            bfu_bits=args.bfu_bits,
            bfu_hashes=args.bfu_hashes,
            k=args.kmer_size,
            seed=args.seed,
        )
    else:
        # Auto-configuration: B, R and the BFU size are chosen for the
        # *full* file count; only the per-document cardinality is pooled
        # from the first batch (the paper's tiny-fraction estimate).
        config = configure_from_sample(
            first_batch,
            fp_rate=args.fp_rate,
            num_partitions=args.partitions or None,
            repetitions=args.repetitions or None,
            bfu_hashes=args.bfu_hashes,
            k=args.kmer_size,
            seed=args.seed,
            num_documents=len(paths),
        )
    index = Rambo(config)
    num_documents = 0
    batch = first_batch
    # With an effective thread count above one (--threads or REPRO_THREADS)
    # each batch's insert is sharded across the executor pool; the sharded
    # path is bit-identical to the inline one, so the written index does
    # not depend on the thread count.
    parallel_insert = get_num_threads() > 1
    while batch:
        with Timer() as build_timer:
            index.add_documents(batch, parallel=parallel_insert)
        build_seconds += build_timer.wall_seconds
        num_documents += len(batch)
        batch = next_batch(doc_iter)
    print(f"parsed {num_documents} documents from {input_dir} in {parse_seconds:.2f}s")
    print(
        f"config: B={config.num_partitions} R={config.repetitions} "
        f"bfu_bits={config.bfu_bits} eta={config.bfu_hashes} k={config.k}"
    )
    metadata = _load_metadata_file(args.metadata) if args.metadata else None
    written = save_index(index, args.output, format=args.format, metadata=metadata)
    print(
        f"built in {build_seconds:.2f}s, wrote {human_bytes(written)} to {args.output} "
        f"({args.format} format)"
    )
    if metadata is not None:
        covered = sum(1 for name in index.document_names if name in metadata)
        print(
            f"wrote metadata sidecar for {len(metadata)} documents "
            f"({covered}/{index.num_documents} indexed documents covered)"
        )
    return 0


def _load_metadata_file(path: str):
    """Parse a ``--metadata`` JSON file into a :class:`MetadataStore`.

    Accepts either the sidecar format (``{"format_version": 1, "documents":
    {...}}``) or a bare ``{name: {field: value}}`` mapping.
    """
    from repro.meta import MetadataStore

    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SystemExit(f"metadata file {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"metadata file {path} is not valid JSON: {exc}") from None
    try:
        if isinstance(payload, dict) and "documents" in payload:
            return MetadataStore.from_dict(payload)
        if isinstance(payload, dict):
            return MetadataStore(payload)
    except ValueError as exc:
        raise SystemExit(f"bad metadata file {path}: {exc}") from None
    raise SystemExit(f"metadata file {path} must be a JSON object")


def _parse_filters(pairs: Sequence[str]):
    """``--filter k=v`` pairs -> a filter mapping (repeated keys OR together)."""
    filters: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key.strip():
            raise SystemExit(f"bad --filter {pair!r}: expected FIELD=VALUE")
        existing = filters.get(key.strip())
        if existing is None:
            filters[key.strip()] = value
        elif isinstance(existing, list):
            existing.append(value)
        else:
            filters[key.strip()] = [existing, value]
    return filters


def _normalise_term(term: str, k: int, canonical: bool = False):
    """Encode DNA terms the way the build path stores them.

    Thin alias of :func:`repro.kmers.extraction.normalise_query_term` — the
    one rule the CLI, the serve HTTP front end and the client share, so a
    term means the same thing through every door.
    """
    return normalise_query_term(term, k, canonical=canonical)


def _cmd_query_server(args: argparse.Namespace) -> int:
    """Answer the query against a running ``serve`` process over HTTP."""
    from repro.serve.client import ServeClient, ServeClientError

    if args.sequence:
        raise SystemExit(
            "--sequence is not supported with --server (sequence queries are "
            "conjunctive; query the index file locally instead)"
        )
    # With --server there is no local index file, so every positional —
    # including the slot that would otherwise name the index — is a term.
    terms = ([args.index] if args.index else []) + list(args.terms)
    if not terms:
        raise SystemExit("nothing to query: pass terms")
    method = "sparse" if args.sparse else "full"
    filters = _parse_filters(args.filter) if args.filter else None
    client = ServeClient(args.server)
    try:
        # Terms go up verbatim; the server normalises DNA words against its
        # own k, exactly like the local path does.  --backend/--filter route
        # through the server-side planner.
        response = client.query(
            terms,
            method=method,
            canonical=args.canonical,
            backend=args.backend,
            filters=filters,
        )
    except ServeClientError as exc:
        raise SystemExit(f"server query failed: {exc}") from exc
    plan = response.get("plan")
    if plan and args.backend == "auto":
        print(f"# plan: method={plan['method']}", file=sys.stderr)
    for entry in response["results"]:
        matches = ",".join(entry["documents"]) or "-"
        print(f"{entry['term']}\t{matches}\t{entry['filters_probed']}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.server:
        return _cmd_query_server(args)
    # Auto-detects the file format: v1 indexes are loaded into memory, mmap
    # indexes are served zero-copy straight from the file.
    if not args.index:
        raise SystemExit("an index file is required unless --server is given")
    index = open_index(args.index)
    method = "sparse" if args.sparse else "full"

    queries: List[str] = list(args.terms)
    sequences: List[str] = [s for s in (args.sequence or []) if s]
    if not queries and not sequences:
        raise SystemExit("nothing to query: pass terms and/or --sequence")
    filters = _parse_filters(args.filter) if args.filter else None
    if args.backend or filters:
        return _cmd_query_planned(args, index, queries, sequences, filters)
    # Each sequence is a conjunctive batch over its k-mers, answered by the
    # vectorised query_terms engine; one output line per sequence, in order.
    for sequence in sequences:
        try:
            result = index.query_sequence(sequence, canonical=args.canonical, method=method)
        except ValueError as exc:
            raise SystemExit(f"bad --sequence value: {exc}") from exc
        matches = ",".join(sorted(result.documents)) or "-"
        print(f"sequence\t{matches}\t{result.filters_probed}")
    if queries:
        # All terms go through the batched engine in one call.
        results = index.query_terms_batch(
            [_normalise_term(term, index.k, canonical=args.canonical) for term in queries],
            method=method,
        )
        for term, result in zip(queries, results):
            matches = ",".join(sorted(result.documents)) or "-"
            print(f"{term}\t{matches}\t{result.filters_probed}")
    return 0


#: CLI backend spellings -> planner backend names.
_BACKEND_NAMES = {"auto": "auto", "full": "batch-full", "sparse": "batch-sparse"}


def _cmd_query_planned(args, index, queries, sequences, filters) -> int:
    """The planned local query path (``--backend`` and/or ``--filter``).

    Builds a :class:`repro.plan.Planner` over the opened index, picking up
    the calibrated cost model and the metadata sidecar next to the artifact;
    plan decisions go to stderr so stdout stays the same term/matches/probes
    table the unplanned path prints.
    """
    from repro.kmers.vectorized import extract_kmer_codes
    from repro.plan import CostModel, Planner

    backend = _BACKEND_NAMES[args.backend or ("sparse" if args.sparse else "full")]
    try:
        from repro.meta import load_sidecar_for

        planner = Planner.for_index(
            index,
            cost_model=CostModel.load_for(args.index),
            metadata=load_sidecar_for(args.index),
            include_scalar=False,
        )
    except ValueError as exc:
        raise SystemExit(f"cannot plan over {args.index}: {exc}") from exc

    def run(terms, mode):
        try:
            return planner.execute(terms, mode=mode, backend=backend, filters=filters)
        except ValueError as exc:
            raise SystemExit(f"query failed: {exc}") from exc

    for sequence in sequences:
        kmers = extract_kmer_codes(sequence, k=index.k, canonical=args.canonical)
        if kmers.size == 0:
            raise SystemExit(
                f"bad --sequence value: sequence of length {len(sequence)} "
                f"yields no {index.k}-mers"
            )
        execution = run(list(kmers), "conjunction")
        result = execution.result
        print(f"# plan: {json.dumps(execution.plan.as_dict())}", file=sys.stderr)
        matches = ",".join(sorted(result.documents)) or "-"
        print(f"sequence\t{matches}\t{result.filters_probed}")
    if queries:
        terms = [_normalise_term(t, index.k, canonical=args.canonical) for t in queries]
        execution = run(terms, "batch")
        print(f"# plan: {json.dumps(execution.plan.as_dict())}", file=sys.stderr)
        for term, result in zip(queries, execution.results):
            matches = ",".join(sorted(result.documents)) or "-"
            print(f"{term}\t{matches}\t{result.filters_probed}")
    return 0


def _cmd_calibrate(args) -> int:
    """Fit and persist the per-backend cost model for one index artifact."""
    from repro.plan import CostModel, Planner, cost_model_path

    output = Path(args.output) if args.output else cost_model_path(args.index)
    if args.from_json:
        model = CostModel()
        try:
            lines = Path(args.from_json).read_text(encoding="utf-8").splitlines()
            payload = [json.loads(line) for line in lines if line.strip()]
        except FileNotFoundError:
            raise SystemExit(f"bench JSON file {args.from_json} does not exist") from None
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{args.from_json} is not a JSONL stream: {exc}") from None
        try:
            fitted = model.fit_from_grid(payload)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
    else:
        index = open_index(args.index)
        try:
            sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
        except ValueError:
            raise SystemExit(f"bad --sizes {args.sizes!r}: expected N,N,...") from None
        if not sizes or min(sizes) < 1:
            raise SystemExit(f"bad --sizes {args.sizes!r}: need positive batch sizes")
        planner = Planner.for_index(index, include_scalar=not args.no_scalar)
        with Timer() as timer:
            model = planner.calibrate(sizes=sizes, repeats=args.repeats, seed=args.seed)
        # The merged model also carries hint-derived defaults; report only
        # the backends this run actually measured.
        fitted = planner.backend_names
        print(f"measured {len(fitted)} backends over sizes {sizes} in {timer.wall_seconds:.2f}s")
    model.save(output)
    print(f"fitted backends: {', '.join(fitted)}")
    for name in fitted:
        coefficients = model.coefficients(name)
        print(
            f"  {name}: setup={coefficients['setup']:.3e}s "
            f"per_term={coefficients['per_term']:.3e}s "
            f"per_term_selectivity={coefficients['per_term_selectivity']:.3e}s"
        )
    print(f"wrote cost model to {output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    # Both output modes render the same describe_index record — the schema
    # the serve command's /stats endpoint embeds — so ops tooling parsing
    # either source sees identical numbers.
    index = open_index(args.index)
    record = describe_index(index, args.index)
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    config = index.config
    print(f"index file      : {record['path']}")
    print(f"format          : {record['format']}" + (" (memory-mapped)" if record["mapped"] else ""))
    print(f"documents       : {record['documents']}")
    print(f"partitions (B)  : {record['partitions']}")
    print(f"repetitions (R) : {record['repetitions']}")
    print(f"BFU bits        : {config.bfu_bits} ({config.bfu_hashes} hashes)")
    print(f"k-mer length    : {record['k']}")
    for component, size in record["size_bytes"].items():
        if component != "total":
            print(f"size[{component:<11}]: {human_bytes(size)}")
    print(f"size[total      ]: {human_bytes(record['size_bytes']['total'])}")
    fill = record.get("fill_ratio")
    if fill and index.num_partitions * index.repetitions:
        print(f"BFU fill ratio  : min={fill['min']:.3f} mean={fill['mean']:.3f} "
              f"max={fill['max']:.3f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # The service opens the index once (mmap files serve zero-copy) and the
    # HTTP layer fans every client into the shared coalescer.
    from repro.serve.http import start_http_server
    from repro.serve.service import QueryService

    if args.tick_ms < 0:
        raise SystemExit(f"--tick-ms must be >= 0, got {args.tick_ms}")
    if args.cache_size < 0:
        raise SystemExit(f"--cache-size must be >= 0, got {args.cache_size}")
    if args.compact_after < 0:
        raise SystemExit(f"--compact-after must be >= 0, got {args.compact_after}")
    if args.replicate_from:
        # Warm standby: no local index file — the base snapshot comes from
        # the primary (or a previous standby run of the same --wal dir).
        if args.index:
            raise SystemExit(
                "--replicate-from takes no index argument (the base snapshot "
                "is fetched from the primary)"
            )
        if not args.wal:
            raise SystemExit("--replicate-from requires --wal DIR")
        from repro.replicate import ReplicaEngine

        service, _replica = ReplicaEngine.bootstrap(
            args.replicate_from,
            args.wal,
            service_opts={
                "cache_size": args.cache_size,
                "tick_seconds": args.tick_ms / 1000.0,
            },
            segment_bytes=args.wal_segment_bytes,
            promote_kwargs={
                "auto_compact_docs": args.compact_after,
                "group_commit_ms": args.group_commit_ms,
                "replica_ack": args.replica_ack,
            },
        )
        served = f"standby of {args.replicate_from}"
    else:
        if not args.index:
            raise SystemExit("an index file is required unless --replicate-from is given")
        service = QueryService.open(
            args.index,
            cache_size=args.cache_size,
            tick_seconds=args.tick_ms / 1000.0,
        )
        served = args.index
        if args.wal:
            # Streaming ingest: recover the WAL directory's state (replaying any
            # appends a previous process acknowledged but never compacted) and
            # expose POST /append and /compact.  Appends published after this
            # line are durable before they are acknowledged.
            from repro.ingest import IngestEngine

            engine = IngestEngine(
                service,
                args.wal,
                auto_compact_docs=args.compact_after,
                segment_bytes=args.wal_segment_bytes,
                group_commit_ms=args.group_commit_ms,
                replica_ack=args.replica_ack,
            )
            service.attach_ingest(engine)
    server, _thread = start_http_server(
        service, host=args.host, port=args.port, quiet=not args.verbose
    )
    host, port = server.server_address[:2]
    print(f"serving {served} on http://{host}:{port}", flush=True)
    if args.ready_file:
        # Ops/CI handshake: the file appears only once the socket is bound,
        # so a supervisor can poll for it instead of parsing stdout.
        Path(args.ready_file).write_text(f"{host} {port}\n", encoding="utf-8")
    try:
        # serve_forever runs on the daemon thread; this thread just waits
        # for the interrupt so Ctrl-C shuts down cleanly.
        _thread.join()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.shutdown()
        service.close()
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    """Promote a running standby to primary via ``POST /promote``."""
    from repro.serve.client import ServeClient, ServeClientError

    try:
        record = ServeClient(args.server).promote()
    except ServeClientError as exc:
        raise SystemExit(f"promote failed: {exc}") from exc
    if record.get("promoted"):
        print(
            f"promoted {args.server} to primary "
            f"(generation {record.get('generation')})"
        )
    else:
        print(
            f"{args.server} is already a {record.get('role', 'primary')} "
            f"(generation {record.get('generation')})"
        )
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Stream a directory of sequence files into a running ``serve --wal``."""
    from repro.serve.client import ServeClient, ServeClientError

    input_dir = Path(args.input_dir)
    if not input_dir.is_dir():
        raise SystemExit(f"input directory {input_dir} does not exist")
    if args.batch_size < 1:
        raise SystemExit(f"--batch-size must be >= 1, got {args.batch_size}")
    paths = _document_paths(input_dir)
    client = ServeClient(args.server)

    def to_record(path: Path) -> dict:
        # McCortex files already hold extracted k-mer codes, so they go up
        # as ready term lists; FASTA/FASTQ go up as raw sequences and run
        # through the *server's* extractor against the served index's k —
        # the client never needs to know (or guess) k.
        if path.suffix.lower() == ".mcc":
            codes = read_mccortex(path).to_document().term_codes()
            return {"name": path.stem, "terms": [int(code) for code in codes]}
        reader = read_fastq if path.suffix.lower() in (".fastq", ".fq") else read_fasta
        return {
            "name": path.stem,
            "sequences": [record.sequence for record in reader(path)],
        }

    sent = 0
    with Timer() as timer:
        for start in range(0, len(paths), args.batch_size):
            batch = [to_record(path) for path in paths[start : start + args.batch_size]]
            try:
                ack = client.append(
                    batch, canonical=args.canonical, min_count=args.min_kmer_count
                )
            except ServeClientError as exc:
                raise SystemExit(f"append failed after {sent} documents: {exc}") from exc
            sent += ack["appended"]
            print(
                f"appended {ack['appended']} documents "
                f"(delta now {ack['delta_documents']}, WAL {human_bytes(ack['wal_bytes'])}, "
                f"snapshot {ack['snapshot_id']})"
            )
    if args.compact:
        try:
            record = client.compact()
        except ServeClientError as exc:
            raise SystemExit(f"compaction failed: {exc}") from exc
        if record.get("compacted"):
            print(
                f"compacted {record['documents_folded']} documents into generation "
                f"{record['generation']} in {record['wall_seconds']:.2f}s"
            )
        else:
            print("nothing to compact")
    print(f"ingested {sent} documents from {input_dir} in {timer.wall_seconds:.2f}s")
    return 0


def _cmd_fold(args: argparse.Namespace) -> int:
    # The folded copy is written back in the input's format (folding a
    # mapped index materialises in-memory BFUs, so both outputs are legal).
    file_format = detect_format(args.index)
    index = open_index(args.index)
    before = index.size_in_bytes()
    folded = fold_rambo(index, args.folds)
    written = save_index(folded, args.output, format=file_format)
    print(
        f"folded {args.folds}x: B {index.num_partitions} -> {folded.num_partitions}, "
        f"size {human_bytes(before)} -> {human_bytes(folded.size_in_bytes())}, "
        f"wrote {human_bytes(written)} to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-rambo",
        description="Build and query RAMBO (Repeated And Merged Bloom Filter) indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="index a directory of sequence files")
    build.add_argument("input_dir", help="directory of .fasta/.fastq/.mcc files")
    build.add_argument("output", help="path of the index file to write")
    build.add_argument("--kmer-size", type=int, default=DEFAULT_K, help="k-mer length (default 31)")
    build.add_argument("--fp-rate", type=float, default=0.01, help="target false-positive rate")
    build.add_argument("--partitions", type=int, default=0, help="override B (0 = auto)")
    build.add_argument("--repetitions", type=int, default=0, help="override R (0 = auto)")
    build.add_argument("--bfu-bits", type=int, default=0, help="override BFU size in bits (0 = auto)")
    build.add_argument("--bfu-hashes", type=int, default=2, help="hash probes per BFU (default 2)")
    build.add_argument(
        "--min-count", "--min-kmer-count", dest="min_kmer_count", type=int, default=1,
        help="error-filter threshold applied to FASTQ input (default 1 = keep all); "
             "--min-kmer-count is accepted as an alias",
    )
    build.add_argument(
        "--canonical", action="store_true",
        help="index canonical (strand-neutral) k-mers: each window is stored "
             "as min(kmer, reverse_complement); query with --canonical too",
    )
    build.add_argument(
        "--batch-size", type=int, default=256,
        help="documents per streamed insert batch; bounds construction memory "
             "(default 256; auto-configuration samples the first batch)",
    )
    build.add_argument("--seed", type=int, default=0, help="hash seed")
    build.add_argument(
        "--metadata", metavar="FILE", default=None,
        help="JSON file of per-document metadata ({name: {field: value}}); "
             "written as a sidecar next to the index and used by "
             "'query --filter' and the serve planner's filters",
    )
    build.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="worker threads for construction (default: REPRO_THREADS, else "
             "all cores); the built index is bit-identical for every N",
    )
    build.add_argument(
        "--format", choices=("v1", "mmap"), default="v1",
        help="index file format: v1 loads fully into memory on open; mmap "
             "serves queries zero-copy via memory mapping (default v1). "
             "'query' and 'info' auto-detect the format.",
    )
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="query terms and/or sequences against an index")
    query.add_argument(
        "index", nargs="?", default=None,
        help="index file written by 'build' (omitted when --server is used: "
             "every positional is then a term)",
    )
    query.add_argument(
        "terms", nargs="*",
        help="terms (k-mers or words) to query; all terms are answered in one vectorised batch",
    )
    query.add_argument(
        "--server", metavar="URL", default=None,
        help="query a running 'repro-rambo serve' process at URL instead of "
             "opening an index file locally (terms only; output format is "
             "identical to the local path)",
    )
    query.add_argument(
        "--sequence", action="append", default=[], metavar="SEQ",
        help="query a whole sequence (conjunction of its k-mers); repeatable",
    )
    query.add_argument("--sparse", action="store_true", help="use the RAMBO+ sparse evaluation")
    query.add_argument(
        "--backend", choices=("auto", "full", "sparse"), default=None,
        help="evaluation backend: 'auto' lets the cost-based planner pick "
             "full vs sparse per batch (using <index>.cost.json when "
             "present); 'full'/'sparse' force one; default: legacy --sparse "
             "behaviour",
    )
    query.add_argument(
        "--filter", action="append", default=[], metavar="FIELD=VALUE",
        help="restrict results to documents whose metadata matches (requires "
             "an index built with --metadata); repeatable — same field ORs, "
             "different fields AND",
    )
    query.add_argument(
        "--canonical", action="store_true",
        help="canonicalise query k-mers (use against an index built with --canonical)",
    )
    query.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="worker threads for batch query evaluation (default: REPRO_THREADS, "
             "else all cores); results are bit-identical for every N",
    )
    query.set_defaults(func=_cmd_query)

    info = sub.add_parser("info", help="print index configuration and size breakdown")
    info.add_argument("index", help="index file written by 'build'")
    info.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable describe_index record (the same "
             "schema the serve command's /stats endpoint embeds)",
    )
    info.set_defaults(func=_cmd_info)

    serve = sub.add_parser(
        "serve", help="serve an index over JSON/HTTP with coalescing and caching"
    )
    serve.add_argument(
        "index", nargs="?", default=None,
        help="index file written by 'build' (v1 or mmap); omitted with "
             "--replicate-from (the base snapshot comes from the primary)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port (default 8080; 0 picks a free port, printed on start)",
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096, metavar="N",
        help="hot-term answer-cache capacity in entries (default 4096; 0 disables)",
    )
    serve.add_argument(
        "--tick-ms", type=float, default=2.0, metavar="MS",
        help="request-coalescing window in milliseconds (default 2.0; 0 = "
             "opportunistic batching); co-tune with REPRO_MIN_TERMS_PER_SHARD",
    )
    serve.add_argument(
        "--wal", metavar="DIR", default=None,
        help="enable streaming ingest: write-ahead-log directory for POST "
             "/append durability; replayed on startup (crash recovery) and "
             "compacted into new snapshot generations",
    )
    serve.add_argument(
        "--compact-after", type=int, default=1024, metavar="N",
        help="with --wal: background-compact the delta into a new snapshot "
             "once it holds N documents (default 1024; 0 = manual "
             "compaction via POST /compact only)",
    )
    serve.add_argument(
        "--replicate-from", metavar="URL", default=None,
        help="run as a warm standby of the primary at URL: fetch its base "
             "snapshot, tail its WAL stream into --wal DIR, serve read-only "
             "queries; POST /promote turns this node into a primary",
    )
    serve.add_argument(
        "--wal-segment-bytes", type=int, default=None, metavar="N",
        help="with --wal: roll the WAL to a fresh segment once the current "
             "one reaches N bytes (default REPRO_WAL_SEGMENT_BYTES or 64 MiB; "
             "0 = one segment per generation)",
    )
    serve.add_argument(
        "--group-commit-ms", type=float, default=None, metavar="MS",
        help="with --wal: group-commit window — concurrent appends arriving "
             "within MS share one fsync (default REPRO_GROUP_COMMIT_MS or 0 "
             "= one fsync per batch)",
    )
    serve.add_argument(
        "--replica-ack", type=int, default=0, metavar="N",
        help="with --wal: acknowledge appends only after N standbys durably "
             "applied them (default 0 = asynchronous replication); standbys "
             "whose ack lease expires stop counting, so a dead standby "
             "degrades to async instead of blocking writes",
    )
    serve.add_argument(
        "--ready-file", metavar="PATH", default=None,
        help="write 'host port' to PATH once the socket is bound (supervisor/CI handshake)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="worker threads for batch evaluation inside the server "
             "(default: REPRO_THREADS, else all cores)",
    )
    serve.set_defaults(func=_cmd_serve)

    ingest = sub.add_parser(
        "ingest", help="stream a directory of sequence files into a running serve --wal"
    )
    ingest.add_argument("input_dir", help="directory of .fasta/.fastq/.mcc files to append")
    ingest.add_argument(
        "--server", metavar="URL", required=True,
        help="base URL of a 'repro-rambo serve --wal' process",
    )
    ingest.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="documents per append request — one WAL fsync (and one durable "
             "acknowledgement) per batch (default 64)",
    )
    ingest.add_argument(
        "--min-count", "--min-kmer-count", dest="min_kmer_count", type=int, default=1,
        help="error-filter threshold applied server-side to FASTQ input "
             "(default 1 = keep all)",
    )
    ingest.add_argument(
        "--canonical", action="store_true",
        help="extract canonical k-mers server-side (match an index built with --canonical)",
    )
    ingest.add_argument(
        "--compact", action="store_true",
        help="request a compaction (delta folded into a new snapshot "
             "generation) after the last batch",
    )
    ingest.set_defaults(func=_cmd_ingest)

    promote = sub.add_parser(
        "promote",
        help="promote a running standby ('serve --replicate-from') to primary",
    )
    promote.add_argument(
        "--server", metavar="URL", required=True,
        help="base URL of the standby to promote (idempotent on a primary)",
    )
    promote.set_defaults(func=_cmd_promote)

    calibrate = sub.add_parser(
        "calibrate",
        help="fit the per-backend cost model for 'query --backend auto' and serve",
    )
    calibrate.add_argument("index", help="index file written by 'build'")
    calibrate.add_argument(
        "--output", metavar="PATH", default=None,
        help="where to write the model (default: <index>.cost.json, which "
             "'query --backend auto' and 'serve' pick up automatically)",
    )
    calibrate.add_argument(
        "--sizes", default="16,128,512", metavar="N,N,...",
        help="batch sizes measured per backend (default 16,128,512)",
    )
    calibrate.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="timing repeats per grid cell; the minimum is kept (default 3)",
    )
    calibrate.add_argument("--seed", type=int, default=0, help="probe-term RNG seed")
    calibrate.add_argument(
        "--no-scalar", action="store_true",
        help="skip measuring the scalar reference backend (faster calibration)",
    )
    calibrate.add_argument(
        "--from-json", metavar="FILE", default=None,
        help="fit from a REPRO_BENCH_JSON stream containing the "
             "bench_ablation backend timing grid instead of measuring",
    )
    calibrate.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="worker threads during measurement (match your serving config)",
    )
    calibrate.set_defaults(func=_cmd_calibrate)

    fold = sub.add_parser("fold", help="fold an index over to shrink it")
    fold.add_argument("index", help="index file written by 'build'")
    fold.add_argument("output", help="path of the folded index file to write")
    fold.add_argument("--folds", type=int, default=1, help="number of fold-over steps (default 1)")
    fold.set_defaults(func=_cmd_fold)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    threads = getattr(args, "threads", None)
    if threads is not None:
        if threads < 1:
            raise SystemExit(f"--threads must be >= 1, got {threads}")
        # Scoped so a --threads choice cannot leak into later library calls
        # when main() is driven programmatically (tests, notebooks).
        with num_threads(threads):
            return args.func(args)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
