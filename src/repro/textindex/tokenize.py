"""Word-unigram tokenisation matching the paper's Table 5 preprocessing.

The paper pre-processes Wiki-dump and ClueWeb by "removing stop words, keeping
only alpha-numeric, and tokenizing as word unigrams".  This module implements
exactly that pipeline so real text (e.g. the bundled examples) can be indexed
the same way the synthetic corpus is.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Set

from repro.kmers.extraction import KmerDocument

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A compact English stop-word list; enough to reproduce the preprocessing
#: effect (dropping ubiquitous terms that would otherwise have multiplicity K).
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all am an and any are as at be because been
    before being below between both but by could did do does doing down during each
    few for from further had has have having he her here hers herself him himself his
    how i if in into is it its itself just me more most my myself no nor not now of
    off on once only or other our ours ourselves out over own same she should so some
    such than that the their theirs them themselves then there these they this those
    through to too under until up very was we were what when where which while who
    whom why will with you your yours yourself yourselves
    """.split()
)


def tokenize(
    text: str,
    stopwords: Iterable[str] = DEFAULT_STOPWORDS,
    min_length: int = 2,
) -> List[str]:
    """Lower-case alpha-numeric word unigrams with stop words removed.

    Parameters
    ----------
    text:
        Raw document text.
    stopwords:
        Words to drop (case-insensitive).
    min_length:
        Tokens shorter than this are discarded (single characters are noise).
    """
    stop = {w.lower() for w in stopwords}
    tokens = _TOKEN_RE.findall(text.lower())
    return [tok for tok in tokens if len(tok) >= min_length and tok not in stop]


def document_from_text(
    name: str,
    text: str,
    stopwords: Iterable[str] = DEFAULT_STOPWORDS,
    min_length: int = 2,
) -> KmerDocument:
    """Build an index-ready document (unique word unigrams) from raw text."""
    tokens = tokenize(text, stopwords=stopwords, min_length=min_length)
    return KmerDocument(
        name=name,
        terms=frozenset(tokens),
        source_format="text",
        sequence_length=len(text),
    )
