"""Text tokenisation for the document-indexing experiments (Section 5.4)."""

from repro.textindex.tokenize import DEFAULT_STOPWORDS, tokenize, document_from_text

__all__ = ["DEFAULT_STOPWORDS", "tokenize", "document_from_text"]
